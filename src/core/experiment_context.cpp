#include "spf/core/experiment_context.hpp"

#include <exception>
#include <stdexcept>

#include "spf/common/assert.hpp"
#include "spf/telemetry/telemetry.hpp"

namespace spf {

ExperimentContext::ExperimentContext() : simulator_(SimConfig{}, &arena_) {}

SpRunSummary ExperimentContext::run_original(const TraceBuffer& main_trace,
                                             const SpExperimentConfig& config) {
  SPF_SPAN("replay");
  telemetry::count(telemetry::Counter::kBaselineRuns);
  telemetry::count(telemetry::Counter::kReplayRecords, main_trace.size());
  SimConfig sim = config.sim;
  sim.hw_prefetch = config.baseline_hw_prefetch;
  const SimResult result = simulator_.run(
      sim, {CoreStream{.trace = &main_trace, .origin = FillOrigin::kDemand,
                       .sync = std::nullopt}});
  telemetry::gauge_max(telemetry::Gauge::kArenaBytesMax, arena_.bytes_served());
  return SpRunSummary::from(result);
}

SpRunSummary ExperimentContext::run_sp_once(const TraceBuffer& main_trace,
                                            const SpExperimentConfig& config) {
  SPF_SPAN("replay");
  telemetry::count(telemetry::Counter::kReplayRuns);
  telemetry::count(telemetry::Counter::kReplayRecords, main_trace.size());
  const RoundSync sync{.leader = 0, .round_iters = config.params.round()};
  SimResult result;
  if (config.sim.streaming_cores) {
    // Fused path: the helper core pulls its records through a
    // HelperViewCursor window *during* replay, so helper synthesis is part of
    // this span (no separate helper-gen phase) and the helper scratch is
    // never written.
    helper_feed_.emplace(
        HelperViewCursor(main_trace, config.params, config.helper));
    result = simulator_.run(
        config.sim,
        {
            CoreStream{.trace = &main_trace, .origin = FillOrigin::kDemand,
                       .sync = std::nullopt},
            CoreStream{.source = &*helper_feed_,
                       .origin = FillOrigin::kHelper, .sync = sync},
        });
    const std::uint64_t synthesized = helper_feed_->records_served();
    telemetry::count(telemetry::Counter::kHelperRecords, synthesized);
    telemetry::count(telemetry::Counter::kHelperRecordsSynthesized,
                     synthesized);
    telemetry::count(telemetry::Counter::kHelperScratchBytesSaved,
                     synthesized * sizeof(TraceRecord));
  } else {
    // Materialized reference: generate the helper trace up front, then feed
    // it as an ordinary buffer stream (the pre-fusion pipeline, pinned
    // bit-identical by tests/sim_stream_differential_test.cpp).
    {
      SPF_SPAN("helper-gen");
      make_helper_trace_into(main_trace, config.params, config.helper,
                             helper_scratch_);
    }
    telemetry::count(telemetry::Counter::kHelperRecords,
                     helper_scratch_.size());
    result = simulator_.run(
        config.sim,
        {
            CoreStream{.trace = &main_trace, .origin = FillOrigin::kDemand,
                       .sync = std::nullopt},
            CoreStream{.trace = &helper_scratch_,
                       .origin = FillOrigin::kHelper, .sync = sync},
        });
  }
  telemetry::gauge_max(telemetry::Gauge::kArenaBytesMax, arena_.bytes_served());
  return SpRunSummary::from(result);
}

SpComparison ExperimentContext::run_comparison(const TraceBuffer& main_trace,
                                               const SpExperimentConfig& config) {
  SpComparison cmp;
  cmp.original = run_original(main_trace, config);
  cmp.sp = run_sp_once(main_trace, config);
  return cmp;
}

ExperimentContextPool::ExperimentContextPool(std::size_t capacity)
    : capacity_(capacity) {
  SPF_ASSERT(capacity > 0, "context pool needs positive capacity");
  idle_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    idle_.push_back(std::make_unique<ExperimentContext>());
  }
}

ExperimentContextPool::Lease ExperimentContextPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      auto ctx = std::move(idle_.back());
      idle_.pop_back();
      return Lease(this, std::move(ctx));
    }
  }
  // Oversubscribed: mint a throwaway context rather than block the worker.
  // pool_ == nullptr makes the lease drop it instead of returning it.
  return Lease(nullptr, std::make_unique<ExperimentContext>());
}

std::size_t ExperimentContextPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

void ExperimentContextPool::release(std::unique_ptr<ExperimentContext> ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < capacity_) idle_.push_back(std::move(ctx));
}

std::shared_ptr<const TraceSource> ExperimentContextPool::trace_for(
    const std::string& key, const TraceEmitFn& emit) {
  SPF_ASSERT(emit != nullptr, "trace_for needs an emit function");
  if (key.empty()) {
    // Unkeyed sources are never memoized (e.g. from_source specs that already
    // hold a shared materialized trace).
    SPF_SPAN("trace-emit");
    telemetry::count(telemetry::Counter::kTraceEmissions);
    auto src = emit();
    if (src == nullptr) {
      throw std::runtime_error("trace emitter returned no trace source");
    }
    telemetry::gauge_max(telemetry::Gauge::kTraceRecordsMax, src->trace.size());
    return src;
  }

  std::promise<std::shared_ptr<const TraceSource>> promise;
  TraceFuture future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++memo_stats_.hits;
      future = it->second;
    } else {
      ++memo_stats_.misses;
      owner = true;
      future = promise.get_future().share();
      memo_.emplace(key, future);
    }
  }
  if (owner) {
    // Emission runs outside the lock: other keys proceed concurrently, and
    // only same-key callers wait on the future.
    SPF_SPAN("trace-emit");
    telemetry::count(telemetry::Counter::kTraceEmissions);
    telemetry::count(telemetry::Counter::kTraceMemoMisses);
    try {
      auto src = emit();
      if (src == nullptr) {
        throw std::runtime_error("trace emitter returned no trace source for '" +
                                 key + "'");
      }
      telemetry::gauge_max(telemetry::Gauge::kTraceRecordsMax,
                           src->trace.size());
      promise.set_value(std::move(src));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // A failed emission is not cached: later callers may retry (in-flight
      // waiters still observe this failure through their future copy).
      std::lock_guard<std::mutex> lock(memo_mu_);
      memo_.erase(key);
    }
    return future.get();
  }
  // Memo hit: a short slice per consumer makes re-emission savings visible
  // on the sweep timeline (the wait on a still-emitting future shows up as
  // the slice's duration).
  telemetry::count(telemetry::Counter::kTraceMemoHits);
  SPF_SPAN("memo-hit");
  return future.get();  // rethrows the emission failure for every caller
}

ExperimentContextPool::TraceMemoStats ExperimentContextPool::trace_memo_stats()
    const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  return memo_stats_;
}

void ExperimentContextPool::clear_trace_memo() {
  std::lock_guard<std::mutex> lock(memo_mu_);
  memo_.clear();
  memo_stats_ = TraceMemoStats{};
}

}  // namespace spf
