#include "spf/core/helper_gen.hpp"

#include <algorithm>

#include "spf/common/assert.hpp"

namespace spf {

TraceBuffer make_helper_trace(const TraceBuffer& main_trace,
                              const SpParams& params,
                              const HelperGenOptions& options) {
  TraceBuffer helper;
  make_helper_trace_into(main_trace, params, options, helper);
  return helper;
}

void make_helper_trace_into(const TraceBuffer& main_trace,
                            const SpParams& params,
                            const HelperGenOptions& options, TraceBuffer& out) {
  SPF_ASSERT(params.a_pre > 0, "helper must pre-execute at least one iteration");
  const std::uint32_t round = params.round();

  TraceBuffer& helper = out;
  helper.clear();
  helper.reserve(main_trace.size() / 2);
  // Records arrive grouped by outer iteration, so the round position only
  // needs recomputing when the iteration changes — not one div per record.
  std::uint32_t last_outer = ~std::uint32_t{0};
  std::uint32_t last_pos = 0;
  for (const TraceRecord& r : main_trace) {
    if (r.kind() == AccessKind::kWrite) continue;  // helper never stores
    if (r.outer_iter != last_outer) {
      last_outer = r.outer_iter;
      last_pos = r.outer_iter % round;
    }
    const std::uint32_t pos = last_pos;
    const bool pre_execute = pos >= params.a_ski;
    if (!pre_execute && !r.is_spine()) continue;

    AccessKind kind = AccessKind::kRead;
    if (pre_execute && r.is_delinquent() && options.use_prefetch_instructions) {
      kind = AccessKind::kPrefetch;
    }
    helper.emit(r.addr, r.outer_iter, kind, r.site, r.flags(),
                options.helper_compute_gap);
  }
}

TraceBuffer merge_traces_by_iter(const TraceBuffer& a, const TraceBuffer& b) {
  TraceBuffer merged;
  merged.reserve(a.size() + b.size());
  auto& out = merged.mutable_records();
  const std::span<const TraceRecord> ra = a.records();
  const std::span<const TraceRecord> rb = b.records();
  const std::size_t na = ra.size();
  const std::size_t nb = rb.size();
  std::size_t ia = 0;
  std::size_t ib = 0;
  // Tie-break contract (see helper_gen.hpp): a-side first on equal outer_iter.
  while (ia < na && ib < nb) {
    const bool take_a = ra[ia].outer_iter <= rb[ib].outer_iter;
    out.push_back(take_a ? ra[ia] : rb[ib]);
    ia += take_a;
    ib += !take_a;
  }
  out.insert(out.end(), ra.begin() + static_cast<std::ptrdiff_t>(ia), ra.end());
  out.insert(out.end(), rb.begin() + static_cast<std::ptrdiff_t>(ib), rb.end());
  return merged;
}

}  // namespace spf
