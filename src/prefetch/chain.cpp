#include "spf/prefetch/chain.hpp"

#include <algorithm>

namespace spf {

void PrefetcherChain::add(std::unique_ptr<HwPrefetcher> engine) {
  engines_.push_back(std::move(engine));
}

void PrefetcherChain::observe(const PrefetchObservation& obs,
                              std::vector<LineAddr>& out) {
  scratch_.clear();
  for (auto& engine : engines_) engine->observe(obs, scratch_);
  // Sort/dedup are no-ops for 0 or 1 candidates — the common case on the
  // per-access hot path.
  if (scratch_.size() > 1) {
    std::sort(scratch_.begin(), scratch_.end());
    scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                   scratch_.end());
  }
  out.insert(out.end(), scratch_.begin(), scratch_.end());
}

void PrefetcherChain::reset() {
  for (auto& engine : engines_) engine->reset();
}

std::string PrefetcherChain::name() const {
  std::string n = "chain[";
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (i) n += "+";
    n += engines_[i]->name();
  }
  n += "]";
  return n;
}

PrefetcherChain PrefetcherChain::core2_default(std::uint32_t line_bytes) {
  PrefetcherChain chain;
  StrideConfig stride;
  stride.line_bytes = line_bytes;
  chain.add(std::make_unique<StridePrefetcher>(stride));
  StreamConfig stream;
  stream.line_bytes = line_bytes;
  chain.add(std::make_unique<StreamPrefetcher>(stream));
  return chain;
}

}  // namespace spf
