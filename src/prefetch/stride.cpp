#include "spf/prefetch/stride.hpp"

#include <bit>

#include "spf/common/assert.hpp"

namespace spf {

StridePrefetcher::StridePrefetcher(const StrideConfig& config)
    : config_(config),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.line_bytes)))),
      table_(config.table_entries) {
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(config.table_entries)),
             "stride table entries must be a power of two");
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(config.line_bytes)),
             "line size must be a power of two");
  SPF_ASSERT(config.threshold <= config.max_confidence, "threshold above saturation");
}

void StridePrefetcher::reset() {
  for (Entry& e : table_) e = Entry{};
  issued_ = 0;
}

}  // namespace spf
