#include "spf/prefetch/stride.hpp"

#include <bit>

#include "spf/common/assert.hpp"

namespace spf {

StridePrefetcher::StridePrefetcher(const StrideConfig& config)
    : config_(config),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.line_bytes)))),
      table_(config.table_entries) {
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(config.table_entries)),
             "stride table entries must be a power of two");
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(config.line_bytes)),
             "line size must be a power of two");
  SPF_ASSERT(config.threshold <= config.max_confidence, "threshold above saturation");
}

void StridePrefetcher::observe(const PrefetchObservation& obs,
                               std::vector<LineAddr>& out) {
  Entry& e = table_[obs.site & (config_.table_entries - 1)];
  if (!e.valid || e.site != obs.site) {
    e = Entry{.site = obs.site, .valid = true, .last_addr = obs.addr};
    return;
  }
  const auto stride = static_cast<std::int64_t>(obs.addr) -
                      static_cast<std::int64_t>(e.last_addr);
  if (stride == 0) return;  // same address: no trend information
  if (stride == e.stride) {
    if (e.confidence < config_.max_confidence) ++e.confidence;
  } else {
    e.stride = stride;
    e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
  }
  e.last_addr = obs.addr;
  if (e.confidence < config_.threshold) return;

  for (std::uint32_t d = 1; d <= config_.degree; ++d) {
    const auto target = static_cast<std::int64_t>(obs.addr) +
                        e.stride * static_cast<std::int64_t>(d);
    if (target < 0) break;
    const LineAddr line = static_cast<Addr>(target) >> line_shift_;
    if (line != (obs.addr >> line_shift_)) {
      out.push_back(line);
      ++issued_;
    }
  }
}

void StridePrefetcher::reset() {
  for (Entry& e : table_) e = Entry{};
  issued_ = 0;
}

}  // namespace spf
