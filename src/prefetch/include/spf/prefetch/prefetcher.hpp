// Hardware prefetcher interface.
//
// The paper's testbed (Core 2) has two kinds of hardware prefetchers per die:
// the DPL (Data Prefetch Logic, an IP/stride prefetcher) and the streamer
// (adjacent/sequential line prefetcher). The paper's pollution case 3 is
// "a prematurely prefetched block displaces data just fetched by hardware
// prefetchers" — so the simulator needs hw prefetchers that actually fill
// lines tagged FillOrigin::kHardware.
//
// Prefetchers observe the demand access stream and emit candidate lines; the
// simulator filters candidates against cache contents and MSHRs and issues
// the survivors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spf/mem/types.hpp"

namespace spf {

/// A static load site identifier (stands in for the program counter of the
/// load instruction in a real machine). Workload trace emitters assign one id
/// per static load in the hot loop.
using SiteId = std::uint32_t;

/// One observed demand access, as seen by a prefetcher.
struct PrefetchObservation {
  Addr addr = 0;
  SiteId site = 0;
  /// Whether the access missed in the cache level this prefetcher watches.
  bool was_miss = false;
};

class HwPrefetcher {
 public:
  virtual ~HwPrefetcher() = default;

  /// Observe one access and append any prefetch candidate lines to `out`.
  /// Candidates may duplicate cached lines; the caller deduplicates.
  virtual void observe(const PrefetchObservation& obs,
                       std::vector<LineAddr>& out) = 0;

  virtual void reset() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace spf
