// IP-stride prefetcher modelling Intel's DPL (Data Prefetch Logic).
//
// A direct-mapped table indexed by load-site id tracks the last address and
// last stride per site with a saturating confidence counter. Once confidence
// reaches the threshold, the prefetcher runs `degree` strides ahead.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/prefetch/prefetcher.hpp"

namespace spf {

struct StrideConfig {
  std::uint32_t table_entries = 256;
  /// Confidence needed before issuing (2-bit saturating counter).
  std::uint32_t threshold = 2;
  std::uint32_t max_confidence = 3;
  /// How many strides ahead to prefetch once confident.
  std::uint32_t degree = 2;
  std::uint32_t line_bytes = 64;
};

class StridePrefetcher final : public HwPrefetcher {
 public:
  explicit StridePrefetcher(const StrideConfig& config);

  void observe(const PrefetchObservation& obs, std::vector<LineAddr>& out) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "dpl-stride"; }

  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

 private:
  struct Entry {
    SiteId site = 0;
    bool valid = false;
    Addr last_addr = 0;
    std::int64_t stride = 0;
    std::uint32_t confidence = 0;
  };

  StrideConfig config_;
  std::uint32_t line_shift_;
  std::vector<Entry> table_;
  std::uint64_t issued_ = 0;
};

}  // namespace spf
