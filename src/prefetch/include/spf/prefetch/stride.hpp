// IP-stride prefetcher modelling Intel's DPL (Data Prefetch Logic).
//
// A direct-mapped table indexed by load-site id tracks the last address and
// last stride per site with a saturating confidence counter. Once confidence
// reaches the threshold, the prefetcher runs `degree` strides ahead.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/prefetch/prefetcher.hpp"

namespace spf {

struct StrideConfig {
  std::uint32_t table_entries = 256;
  /// Confidence needed before issuing (2-bit saturating counter).
  std::uint32_t threshold = 2;
  std::uint32_t max_confidence = 3;
  /// How many strides ahead to prefetch once confident.
  std::uint32_t degree = 2;
  std::uint32_t line_bytes = 64;
};

class StridePrefetcher final : public HwPrefetcher {
 public:
  explicit StridePrefetcher(const StrideConfig& config);

  void observe(const PrefetchObservation& obs, std::vector<LineAddr>& out) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "dpl-stride"; }

  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

 private:
  struct Entry {
    SiteId site = 0;
    bool valid = false;
    Addr last_addr = 0;
    std::int64_t stride = 0;
    std::uint32_t confidence = 0;
  };

  StrideConfig config_;
  std::uint32_t line_shift_;
  std::vector<Entry> table_;
  std::uint64_t issued_ = 0;
};

// Defined here (not stride.cpp) so per-access callers inline the table
// update instead of paying an out-of-line virtual-sized call.
inline void StridePrefetcher::observe(const PrefetchObservation& obs,
                                      std::vector<LineAddr>& out) {
  Entry& e = table_[obs.site & (config_.table_entries - 1)];
  if (!e.valid || e.site != obs.site) {
    e = Entry{.site = obs.site, .valid = true, .last_addr = obs.addr};
    return;
  }
  const auto stride = static_cast<std::int64_t>(obs.addr) -
                      static_cast<std::int64_t>(e.last_addr);
  if (stride == 0) return;  // same address: no trend information
  if (stride == e.stride) {
    if (e.confidence < config_.max_confidence) ++e.confidence;
  } else {
    e.stride = stride;
    e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
  }
  e.last_addr = obs.addr;
  if (e.confidence < config_.threshold) return;

  for (std::uint32_t d = 1; d <= config_.degree; ++d) {
    const auto target = static_cast<std::int64_t>(obs.addr) +
                        e.stride * static_cast<std::int64_t>(d);
    if (target < 0) break;
    const LineAddr line = static_cast<Addr>(target) >> line_shift_;
    if (line != (obs.addr >> line_shift_)) {
      out.push_back(line);
      ++issued_;
    }
  }
}

}  // namespace spf
