// Composite prefetcher: fans one observation out to several engines and
// deduplicates the merged candidate list. Mirrors the Core 2 arrangement of
// one DPL + one streamer per core, both watching the same access stream.
#pragma once

#include <memory>
#include <vector>

#include "spf/prefetch/prefetcher.hpp"
#include "spf/prefetch/stream.hpp"
#include "spf/prefetch/stride.hpp"

namespace spf {

class PrefetcherChain final : public HwPrefetcher {
 public:
  PrefetcherChain() = default;

  void add(std::unique_ptr<HwPrefetcher> engine);
  [[nodiscard]] std::size_t engine_count() const noexcept { return engines_.size(); }

  void observe(const PrefetchObservation& obs, std::vector<LineAddr>& out) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;

  /// The paper testbed's per-core configuration: DPL stride + streamer.
  static PrefetcherChain core2_default(std::uint32_t line_bytes = 64);

 private:
  std::vector<std::unique_ptr<HwPrefetcher>> engines_;
  std::vector<LineAddr> scratch_;
};

}  // namespace spf
