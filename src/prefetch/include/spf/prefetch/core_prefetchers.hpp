// Devirtualized per-core prefetcher pair for the simulator hot path.
//
// Semantically identical to PrefetcherChain::core2_default (DPL stride first,
// then the streamer, candidates of one observation sorted and deduplicated),
// but the two engines are direct members: no unique_ptr indirection and no
// virtual dispatch per access, so `observe` inlines into the simulator's
// access loop. PrefetcherChain stays as the generic composition surface for
// ablations and tests; this type is the fixed Core 2 arrangement only.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "spf/prefetch/stream.hpp"
#include "spf/prefetch/stride.hpp"

namespace spf {

class CorePrefetchers {
 public:
  explicit CorePrefetchers(std::uint32_t line_bytes)
      : stride_(stride_config(line_bytes)), stream_(stream_config(line_bytes)) {}

  /// Observe one access and append this observation's deduplicated candidate
  /// lines to `out` (stride engine's candidates ordered before the streamer's
  /// when both fire, exactly like PrefetcherChain).
  void observe(const PrefetchObservation& obs, std::vector<LineAddr>& out) {
    const std::size_t first = out.size();
    stride_.observe(obs, out);
    stream_.observe(obs, out);
    // Sort/dedup only this observation's tail; no-op for 0 or 1 candidates,
    // the common case.
    if (out.size() - first > 1) {
      std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
      out.erase(std::unique(out.begin() + static_cast<std::ptrdiff_t>(first),
                            out.end()),
                out.end());
    }
  }

  void reset() {
    stride_.reset();
    stream_.reset();
  }

  [[nodiscard]] const StridePrefetcher& stride() const noexcept { return stride_; }
  [[nodiscard]] const StreamPrefetcher& stream() const noexcept { return stream_; }

 private:
  static StrideConfig stride_config(std::uint32_t line_bytes) {
    StrideConfig config;
    config.line_bytes = line_bytes;
    return config;
  }
  static StreamConfig stream_config(std::uint32_t line_bytes) {
    StreamConfig config;
    config.line_bytes = line_bytes;
    return config;
  }

  StridePrefetcher stride_;
  StreamPrefetcher stream_;
};

}  // namespace spf
