// Stream prefetcher modelling Intel's L2 "streamer".
//
// Tracks up to `streams` concurrent line-granular streams, each confined to
// one 4 KB page (real streamers do not cross page boundaries because they
// work on physical addresses). Two consecutive misses to adjacent lines in
// the same page arm a stream; while armed, each access at the stream head
// pulls the window `distance` lines ahead.
#pragma once

#include <cstdint>
#include <vector>

#include "spf/prefetch/prefetcher.hpp"

namespace spf {

struct StreamConfig {
  /// Concurrent stream trackers (Core 2 streamer tracks 8-16).
  std::uint32_t streams = 16;
  /// How many lines ahead of the head to run.
  std::uint32_t distance = 4;
  /// Lines issued per triggering access.
  std::uint32_t degree = 2;
  std::uint32_t line_bytes = 64;
  std::uint32_t page_bytes = 4096;
};

class StreamPrefetcher final : public HwPrefetcher {
 public:
  explicit StreamPrefetcher(const StreamConfig& config);

  void observe(const PrefetchObservation& obs, std::vector<LineAddr>& out) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "streamer"; }

  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

 private:
  enum class State : std::uint8_t { kInvalid, kTraining, kArmed };

  struct Stream {
    State state = State::kInvalid;
    std::uint64_t page = 0;   // page-granular address
    LineAddr last_line = 0;   // last observed line in the stream
    LineAddr sent_until = 0;  // highest (or lowest) line already requested
    std::int8_t dir = 1;      // +1 ascending, -1 descending
    std::uint64_t lru = 0;    // replacement stamp
  };

  Stream* find_page(std::uint64_t page);
  Stream& victim();

  StreamConfig config_;
  std::uint32_t line_shift_;
  std::uint32_t page_shift_;
  std::uint32_t lines_per_page_;
  std::vector<Stream> streams_;
  std::uint64_t clock_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace spf
