// Stream prefetcher modelling Intel's L2 "streamer".
//
// Tracks up to `streams` concurrent line-granular streams, each confined to
// one 4 KB page (real streamers do not cross page boundaries because they
// work on physical addresses). Two consecutive misses to adjacent lines in
// the same page arm a stream; while armed, each access at the stream head
// pulls the window `distance` lines ahead.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "spf/prefetch/prefetcher.hpp"

namespace spf {

struct StreamConfig {
  /// Concurrent stream trackers (Core 2 streamer tracks 8-16).
  std::uint32_t streams = 16;
  /// How many lines ahead of the head to run.
  std::uint32_t distance = 4;
  /// Lines issued per triggering access.
  std::uint32_t degree = 2;
  std::uint32_t line_bytes = 64;
  std::uint32_t page_bytes = 4096;
};

class StreamPrefetcher final : public HwPrefetcher {
 public:
  explicit StreamPrefetcher(const StreamConfig& config);

  void observe(const PrefetchObservation& obs, std::vector<LineAddr>& out) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "streamer"; }

  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

 private:
  enum class State : std::uint8_t { kInvalid, kTraining, kArmed };

  struct Stream {
    State state = State::kInvalid;
    std::uint64_t page = 0;   // page-granular address
    LineAddr last_line = 0;   // last observed line in the stream
    LineAddr sent_until = 0;  // highest (or lowest) line already requested
    std::int8_t dir = 1;      // +1 ascending, -1 descending
    std::uint64_t lru = 0;    // replacement stamp
  };

  Stream* find_page(std::uint64_t page) {
    for (Stream& s : streams_) {
      if (s.state != State::kInvalid && s.page == page) return &s;
    }
    return nullptr;
  }

  Stream& victim() {
    Stream* best = &streams_[0];
    std::uint64_t best_lru = std::numeric_limits<std::uint64_t>::max();
    for (Stream& s : streams_) {
      if (s.state == State::kInvalid) return s;
      if (s.lru < best_lru) {
        best_lru = s.lru;
        best = &s;
      }
    }
    return *best;
  }

  StreamConfig config_;
  std::uint32_t line_shift_;
  std::uint32_t page_shift_;
  std::uint32_t lines_per_page_;
  std::vector<Stream> streams_;
  std::uint64_t clock_ = 0;
  std::uint64_t issued_ = 0;
};

// Defined here (not stream.cpp) so per-access callers inline the tracker
// scan instead of paying an out-of-line virtual-sized call.
inline void StreamPrefetcher::observe(const PrefetchObservation& obs,
                                      std::vector<LineAddr>& out) {
  const LineAddr line = obs.addr >> line_shift_;
  const std::uint64_t page = obs.addr >> page_shift_;
  ++clock_;

  Stream* s = find_page(page);
  if (s == nullptr) {
    if (!obs.was_miss) return;  // streams train on misses only
    Stream& fresh = victim();
    fresh = Stream{.state = State::kTraining,
                   .page = page,
                   .last_line = line,
                   .sent_until = line,
                   .dir = 1,
                   .lru = clock_};
    return;
  }
  s->lru = clock_;

  if (s->state == State::kTraining) {
    if (!obs.was_miss || line == s->last_line) return;
    s->dir = line > s->last_line ? 1 : -1;
    // Adjacent (or near-adjacent) second miss arms the stream.
    const LineAddr gap = line > s->last_line ? line - s->last_line
                                             : s->last_line - line;
    if (gap <= 2) {
      s->state = State::kArmed;
      s->last_line = line;
      s->sent_until = line;
    } else {
      s->last_line = line;  // restart training at the new point
    }
    if (s->state != State::kArmed) return;
  } else {
    s->last_line = line;
  }

  // Armed: keep the window `distance` lines ahead of the head, `degree` lines
  // per trigger, clipped to the page.
  const LineAddr page_first = s->page << (page_shift_ - line_shift_);
  const LineAddr page_last = page_first + lines_per_page_ - 1;
  std::uint32_t sent = 0;
  while (sent < config_.degree) {
    const std::int64_t ahead =
        s->dir > 0 ? static_cast<std::int64_t>(s->sent_until) - static_cast<std::int64_t>(line)
                   : static_cast<std::int64_t>(line) - static_cast<std::int64_t>(s->sent_until);
    if (ahead >= static_cast<std::int64_t>(config_.distance)) break;
    const std::int64_t next = static_cast<std::int64_t>(s->sent_until) + s->dir;
    if (next < static_cast<std::int64_t>(page_first) ||
        next > static_cast<std::int64_t>(page_last)) {
      break;  // streamer never crosses the page
    }
    s->sent_until = static_cast<LineAddr>(next);
    out.push_back(s->sent_until);
    ++issued_;
    ++sent;
  }
}

}  // namespace spf
