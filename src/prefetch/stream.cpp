#include "spf/prefetch/stream.hpp"

#include <bit>
#include <limits>

#include "spf/common/assert.hpp"

namespace spf {

StreamPrefetcher::StreamPrefetcher(const StreamConfig& config)
    : config_(config),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.line_bytes)))),
      page_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.page_bytes)))),
      lines_per_page_(config.page_bytes / config.line_bytes),
      streams_(config.streams) {
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(config.line_bytes)),
             "line size must be a power of two");
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(config.page_bytes)),
             "page size must be a power of two");
  SPF_ASSERT(config.page_bytes > config.line_bytes, "page must exceed line");
  SPF_ASSERT(config.streams > 0, "need at least one stream tracker");
}

StreamPrefetcher::Stream* StreamPrefetcher::find_page(std::uint64_t page) {
  for (Stream& s : streams_) {
    if (s.state != State::kInvalid && s.page == page) return &s;
  }
  return nullptr;
}

StreamPrefetcher::Stream& StreamPrefetcher::victim() {
  Stream* best = &streams_[0];
  std::uint64_t best_lru = std::numeric_limits<std::uint64_t>::max();
  for (Stream& s : streams_) {
    if (s.state == State::kInvalid) return s;
    if (s.lru < best_lru) {
      best_lru = s.lru;
      best = &s;
    }
  }
  return *best;
}

void StreamPrefetcher::observe(const PrefetchObservation& obs,
                               std::vector<LineAddr>& out) {
  const LineAddr line = obs.addr >> line_shift_;
  const std::uint64_t page = obs.addr >> page_shift_;
  ++clock_;

  Stream* s = find_page(page);
  if (s == nullptr) {
    if (!obs.was_miss) return;  // streams train on misses only
    Stream& fresh = victim();
    fresh = Stream{.state = State::kTraining,
                   .page = page,
                   .last_line = line,
                   .sent_until = line,
                   .dir = 1,
                   .lru = clock_};
    return;
  }
  s->lru = clock_;

  if (s->state == State::kTraining) {
    if (!obs.was_miss || line == s->last_line) return;
    s->dir = line > s->last_line ? 1 : -1;
    // Adjacent (or near-adjacent) second miss arms the stream.
    const LineAddr gap = line > s->last_line ? line - s->last_line
                                             : s->last_line - line;
    if (gap <= 2) {
      s->state = State::kArmed;
      s->last_line = line;
      s->sent_until = line;
    } else {
      s->last_line = line;  // restart training at the new point
    }
    if (s->state != State::kArmed) return;
  } else {
    s->last_line = line;
  }

  // Armed: keep the window `distance` lines ahead of the head, `degree` lines
  // per trigger, clipped to the page.
  const LineAddr page_first = s->page << (page_shift_ - line_shift_);
  const LineAddr page_last = page_first + lines_per_page_ - 1;
  std::uint32_t sent = 0;
  while (sent < config_.degree) {
    const std::int64_t ahead =
        s->dir > 0 ? static_cast<std::int64_t>(s->sent_until) - static_cast<std::int64_t>(line)
                   : static_cast<std::int64_t>(line) - static_cast<std::int64_t>(s->sent_until);
    if (ahead >= static_cast<std::int64_t>(config_.distance)) break;
    const std::int64_t next = static_cast<std::int64_t>(s->sent_until) + s->dir;
    if (next < static_cast<std::int64_t>(page_first) ||
        next > static_cast<std::int64_t>(page_last)) {
      break;  // streamer never crosses the page
    }
    s->sent_until = static_cast<LineAddr>(next);
    out.push_back(s->sent_until);
    ++issued_;
    ++sent;
  }
}

void StreamPrefetcher::reset() {
  for (Stream& s : streams_) s = Stream{};
  clock_ = 0;
  issued_ = 0;
}

}  // namespace spf
