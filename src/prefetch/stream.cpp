#include "spf/prefetch/stream.hpp"

#include <bit>

#include "spf/common/assert.hpp"

namespace spf {

StreamPrefetcher::StreamPrefetcher(const StreamConfig& config)
    : config_(config),
      line_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.line_bytes)))),
      page_shift_(static_cast<std::uint32_t>(
          std::countr_zero(static_cast<std::uint64_t>(config.page_bytes)))),
      lines_per_page_(config.page_bytes / config.line_bytes),
      streams_(config.streams) {
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(config.line_bytes)),
             "line size must be a power of two");
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(config.page_bytes)),
             "page size must be a power of two");
  SPF_ASSERT(config.page_bytes > config.line_bytes, "page must exceed line");
  SPF_ASSERT(config.streams > 0, "need at least one stream tracker");
}

void StreamPrefetcher::reset() {
  for (Stream& s : streams_) s = Stream{};
  clock_ = 0;
  issued_ = 0;
}

}  // namespace spf
