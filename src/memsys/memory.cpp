#include "spf/memsys/memory.hpp"

#include <algorithm>

namespace spf {

Cycle MemoryController::issue(Cycle now, FillOrigin origin) {
  const Cycle start = std::max(now, next_start_);
  next_start_ = start + config_.issue_interval;
  ++stats_.requests;
  ++stats_.requests_by_origin[static_cast<std::size_t>(origin)];
  stats_.total_queue_delay += start - now;
  stats_.busy_cycles += config_.issue_interval;
  return start + config_.service_latency;
}

void MemoryController::writeback(Cycle now) {
  const Cycle start = std::max(now, next_start_);
  next_start_ = start + config_.issue_interval;
  ++stats_.writebacks;
  stats_.busy_cycles += config_.issue_interval;
}

}  // namespace spf
