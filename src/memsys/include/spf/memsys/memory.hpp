// Main-memory timing model: fixed service latency plus a channel that can
// start at most one line transfer every `issue_interval` cycles. The
// serialization makes prefetch traffic contend with demand traffic for
// bandwidth — one of the two costs of early prefetching the paper calls out
// ("wastes precious bandwidth and limits the effectiveness of SP").
#pragma once

#include <cstdint>

#include "spf/mem/types.hpp"

namespace spf {

struct MemoryConfig {
  /// DRAM service latency (cycles from transfer start to data usable). The
  /// paper's Core 2 testbed sees ~300 cycles to DRAM.
  Cycle service_latency = 300;
  /// Minimum cycles between transfer starts (inverse bandwidth). 64B line
  /// every 8 cycles at ~2.4 GHz approximates a ~19 GB/s channel.
  Cycle issue_interval = 8;
};

struct MemoryStats {
  std::uint64_t requests = 0;
  std::uint64_t requests_by_origin[3] = {0, 0, 0};  // indexed by FillOrigin
  /// Dirty-eviction writebacks (consume channel slots, nobody waits on them).
  std::uint64_t writebacks = 0;
  /// Sum of cycles requests waited for the channel (contention).
  std::uint64_t total_queue_delay = 0;
  /// Cycles the channel spent transferring.
  std::uint64_t busy_cycles = 0;

  [[nodiscard]] double mean_queue_delay() const noexcept {
    return requests ? static_cast<double>(total_queue_delay) /
                          static_cast<double>(requests)
                    : 0.0;
  }
};

class MemoryController {
 public:
  explicit MemoryController(const MemoryConfig& config) : config_(config) {}

  [[nodiscard]] const MemoryConfig& config() const noexcept { return config_; }
  [[nodiscard]] const MemoryStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = MemoryStats{}; }

  /// As-if-freshly-constructed with `config` (ExperimentContext reuse seam).
  void reset(const MemoryConfig& config) noexcept {
    config_ = config;
    next_start_ = 0;
    stats_ = MemoryStats{};
  }

  /// Issue a line fetch at time `now`; returns the completion (fill) time.
  /// Monotonic in issue order: each transfer starts no earlier than
  /// `issue_interval` after the previous one started.
  Cycle issue(Cycle now, FillOrigin origin);

  /// Queue a dirty-line writeback: occupies one channel slot (delaying later
  /// fills) but completes asynchronously — no one waits on it.
  void writeback(Cycle now);

  /// When the channel could start another transfer.
  [[nodiscard]] Cycle next_free() const noexcept { return next_start_; }

 private:
  MemoryConfig config_;
  Cycle next_start_ = 0;
  MemoryStats stats_;
};

}  // namespace spf
