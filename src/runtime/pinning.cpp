#include "spf/runtime/pinning.hpp"

#include <pthread.h>
#include <sched.h>

#include <thread>

namespace spf::rt {

unsigned online_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

bool pin_current_thread(unsigned cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

std::optional<std::pair<unsigned, unsigned>> pick_sp_cpu_pair() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0 || CPU_COUNT(&set) < 2) {
    return std::nullopt;
  }
  int first = -1;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (!CPU_ISSET(cpu, &set)) continue;
    if (first < 0) {
      first = cpu;
    } else {
      // Adjacent CPU ids usually share a die/LLC; without parsing sysfs
      // topology this is the best portable guess.
      return std::make_pair(static_cast<unsigned>(first),
                            static_cast<unsigned>(cpu));
    }
  }
  return std::nullopt;
}

}  // namespace spf::rt
