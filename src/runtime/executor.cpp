#include "spf/runtime/executor.hpp"

#include <chrono>
#include <thread>

#include "spf/common/assert.hpp"

namespace spf::rt {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ExecutorReport SpExecutor::run(std::uint32_t rounds, const RoundFn& main_fn,
                               const RoundFn& helper_fn) {
  SPF_ASSERT(config_.max_lead_rounds >= 1, "helper must be allowed to lead");
  ExecutorReport report;
  if (rounds == 0) return report;

  // main_round = first round the main thread has NOT finished entering;
  // starts at 1 because entering round 0 is immediate.
  std::atomic<std::uint32_t> main_round{1};
  std::atomic<bool> main_done{false};
  std::atomic<std::uint64_t> helper_waits{0};
  std::atomic<std::uint64_t> helper_ns{0};

  std::optional<std::pair<unsigned, unsigned>> pair;
  if (config_.pin_threads) pair = pick_sp_cpu_pair();
  report.threads_were_pinned = pair.has_value();

  std::thread helper([&] {
    if (pair) pin_current_thread(pair->second);
    const std::uint64_t t0 = now_ns();
    for (std::uint32_t r = 0; r < rounds; ++r) {
      // Gate: round r needs main to have entered round r, and the helper may
      // lead by at most max_lead_rounds.
      bool waited = false;
      while (!main_done.load(std::memory_order_acquire) &&
             main_round.load(std::memory_order_acquire) + config_.max_lead_rounds
                 <= r + 1) {
        waited = true;
        std::this_thread::yield();
      }
      if (waited) helper_waits.fetch_add(1, std::memory_order_relaxed);
      if (main_done.load(std::memory_order_acquire)) break;  // nothing to help
      helper_fn(r);
    }
    helper_ns.store(now_ns() - t0, std::memory_order_relaxed);
  });

  if (pair) pin_current_thread(pair->first);
  const std::uint64_t t0 = now_ns();
  try {
    for (std::uint32_t r = 0; r < rounds; ++r) {
      main_round.store(r + 1, std::memory_order_release);
      main_fn(r);
    }
  } catch (...) {
    main_done.store(true, std::memory_order_release);
    helper.join();
    throw;
  }
  report.main_ns = now_ns() - t0;
  main_done.store(true, std::memory_order_release);
  helper.join();
  report.helper_ns = helper_ns.load(std::memory_order_relaxed);
  report.helper_waits = helper_waits.load(std::memory_order_relaxed);
  return report;
}

}  // namespace spf::rt
