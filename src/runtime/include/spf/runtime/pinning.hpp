// Thread placement. SP's effectiveness depends on the main and helper
// threads sharing a last-level cache but not a core — on the paper's Core 2
// Quad that means two cores of the same die. These helpers pin threads and
// report the topology available.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

namespace spf::rt {

/// Number of CPUs usable by this process.
[[nodiscard]] unsigned online_cpus();

/// Pins the calling thread to `cpu`. Returns false (and leaves affinity
/// untouched) if the CPU does not exist or the call is not permitted.
bool pin_current_thread(unsigned cpu);

/// A (main, helper) CPU pair for SP, or nullopt on single-CPU machines —
/// callers should then run unpinned and expect no speedup, only correctness.
[[nodiscard]] std::optional<std::pair<unsigned, unsigned>> pick_sp_cpu_pair();

}  // namespace spf::rt
