// High-level SP driver for linked-list hot loops — the production shape of
// the paper's Figure 1: a main visitor over every node and a helper that,
// per round, skips A_SKI nodes along the spine and prefetches for the next
// A_PRE nodes.
//
// Node is any type with a `Node* next` member. Visitors:
//   main_visit(Node&)            — the loop body (may mutate);
//   helper_touch(const Node&)    — issue prefetches for the node's data
//                                  (must not mutate; typically calls
//                                  prefetch_line on the delinquent targets).
#pragma once

#include <cstdint>
#include <vector>

#include "spf/common/assert.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/runtime/executor.hpp"

namespace spf::rt {

/// First node of each round of `round_len` list nodes. The trailing partial
/// round (if any) gets an entry too.
template <typename Node>
std::vector<Node*> round_starts(Node* head, std::uint32_t round_len) {
  SPF_ASSERT(round_len > 0, "round length must be positive");
  std::vector<Node*> starts;
  for (Node* n = head; n != nullptr;) {
    starts.push_back(n);
    for (std::uint32_t i = 0; i < round_len && n != nullptr; ++i) n = n->next;
  }
  return starts;
}

struct ListSpReport {
  ExecutorReport executor;
  std::uint64_t nodes_visited = 0;
  /// Nodes the helper touched. On machines where the main thread finishes
  /// before the helper is scheduled, the helper stops early (prefetching for
  /// a finished loop is pure waste), so this may be less than the static
  /// maximum.
  std::uint64_t nodes_prefetched = 0;
};

/// The helper's walk over one round, as pure logic: skip `a_ski` spine
/// nodes, touch the next `a_pre`. Returns the number touched. This is what
/// run_sp_over_list's helper thread executes per round.
template <typename Node, typename HelperTouch>
std::uint64_t helper_walk_round(Node* round_start, const SpParams& params,
                                HelperTouch&& helper_touch) {
  Node* n = round_start;
  for (std::uint32_t i = 0; i < params.a_ski && n != nullptr; ++i) {
    n = n->next;  // skip phase: spine only
  }
  std::uint64_t touched = 0;
  for (std::uint32_t p = 0; p < params.a_pre && n != nullptr;
       ++p, n = n->next) {
    helper_touch(static_cast<const Node&>(*n));
    ++touched;
  }
  return touched;
}

/// Runs one pass of the SP pattern over the list. Returns per-thread timing
/// plus visit/prefetch counts. The helper reads only spine pointers and
/// whatever helper_touch dereferences; it never mutates.
template <typename Node, typename MainVisit, typename HelperTouch>
ListSpReport run_sp_over_list(Node* head, const SpParams& params,
                              MainVisit&& main_visit, HelperTouch&& helper_touch,
                              const ExecutorConfig& exec_config = {}) {
  ListSpReport report;
  if (head == nullptr) return report;
  const std::uint32_t round_len = params.round();
  const std::vector<Node*> starts = round_starts(head, round_len);
  const auto rounds = static_cast<std::uint32_t>(starts.size());

  std::uint64_t visited = 0;
  // The helper runs on another thread; its counter must be its own cache
  // line away from the main counter to avoid false sharing.
  struct alignas(64) PaddedCounter {
    std::uint64_t value = 0;
  };
  PaddedCounter prefetched;

  SpExecutor executor(exec_config);
  report.executor = executor.run(
      rounds,
      [&](std::uint32_t r) {
        Node* n = starts[r];
        for (std::uint32_t i = 0; i < round_len && n != nullptr;
             ++i, n = n->next) {
          main_visit(*n);
          ++visited;
        }
      },
      [&](std::uint32_t r) {
        prefetched.value += helper_walk_round(starts[r], params, helper_touch);
      });
  report.nodes_visited = visited;
  report.nodes_prefetched = prefetched.value;
  return report;
}

}  // namespace spf::rt
