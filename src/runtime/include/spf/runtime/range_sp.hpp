// High-level SP driver for array-scan hot loops (MCF's pricing-loop shape).
//
// Unlike the linked-list driver, the helper can jump straight to any index,
// so the skip phase costs nothing: per round of A_SKI + A_PRE indices the
// helper touches only the last A_PRE. With RP = 1 (A_SKI = 0) this is
// conventional helper threading over the array.
//
// Visitors:
//   main_visit(size_t i)          — the loop body;
//   helper_touch(size_t i)        — prefetch for index i (must not mutate).
#pragma once

#include <cstdint>

#include "spf/common/assert.hpp"
#include "spf/core/sp_params.hpp"
#include "spf/runtime/executor.hpp"

namespace spf::rt {

struct RangeSpReport {
  ExecutorReport executor;
  std::uint64_t indices_visited = 0;
  /// Indices the helper touched. May be less than the static maximum when
  /// the main loop finishes before the helper gets scheduled.
  std::uint64_t indices_prefetched = 0;
};

/// Indices the helper touches in round r (pure logic, directly testable):
/// [r*round + a_ski, min((r+1)*round, n)).
template <typename HelperTouch>
std::uint64_t helper_touch_round(std::size_t n, std::uint32_t r,
                                 const SpParams& params,
                                 HelperTouch&& helper_touch) {
  const std::uint64_t round = params.round();
  const std::uint64_t begin = static_cast<std::uint64_t>(r) * round + params.a_ski;
  const std::uint64_t end =
      std::min<std::uint64_t>((static_cast<std::uint64_t>(r) + 1) * round, n);
  std::uint64_t touched = 0;
  for (std::uint64_t i = begin; i < end; ++i) {
    helper_touch(static_cast<std::size_t>(i));
    ++touched;
  }
  return touched;
}

template <typename MainVisit, typename HelperTouch>
RangeSpReport run_sp_over_range(std::size_t n, const SpParams& params,
                                MainVisit&& main_visit,
                                HelperTouch&& helper_touch,
                                const ExecutorConfig& exec_config = {}) {
  RangeSpReport report;
  if (n == 0) return report;
  const std::uint64_t round = params.round();
  SPF_ASSERT(round > 0, "round must be positive");
  const auto rounds =
      static_cast<std::uint32_t>((n + round - 1) / round);

  std::uint64_t visited = 0;
  struct alignas(64) PaddedCounter {
    std::uint64_t value = 0;
  };
  PaddedCounter prefetched;

  SpExecutor executor(exec_config);
  report.executor = executor.run(
      rounds,
      [&](std::uint32_t r) {
        const std::uint64_t begin = static_cast<std::uint64_t>(r) * round;
        const std::uint64_t end = std::min<std::uint64_t>(begin + round, n);
        for (std::uint64_t i = begin; i < end; ++i) {
          main_visit(static_cast<std::size_t>(i));
          ++visited;
        }
      },
      [&](std::uint32_t r) {
        prefetched.value += helper_touch_round(n, r, params, helper_touch);
      });
  report.indices_visited = visited;
  report.indices_prefetched = prefetched.value;
  return report;
}

}  // namespace spf::rt
