// Real-thread SP executor.
//
// Runs a main kernel and an SP helper kernel concurrently with the paper's
// round-level staggering: the hot loop is cut into rounds of A_SKI + A_PRE
// outer iterations; the helper may work on round k only once the main thread
// has entered round k, and may run at most `max_lead_rounds` rounds ahead —
// the run-ahead clamp that keeps a fast helper from strip-mining the cache
// arbitrarily far in front (prefetch distance stays ~A_SKI iterations).
//
// Synchronization is two monotonic atomic round counters and spin-waits with
// a yield fallback — the helper is a throwaway prefetching thread; blocking
// primitives would cost more than the loads it issues.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "spf/runtime/pinning.hpp"

namespace spf::rt {

struct ExecutorConfig {
  /// Rounds the helper may lead the main thread by (>= 1).
  std::uint32_t max_lead_rounds = 1;
  /// Pin main/helper to distinct CPUs when a pair is available.
  bool pin_threads = true;
};

struct ExecutorReport {
  std::uint64_t main_ns = 0;
  std::uint64_t helper_ns = 0;
  /// Rounds the helper actually waited at the barrier.
  std::uint64_t helper_waits = 0;
  bool threads_were_pinned = false;
};

/// Per-round kernels. `round` is 0-based; each callee processes the outer
/// iterations belonging to that round.
using RoundFn = std::function<void(std::uint32_t round)>;

class SpExecutor {
 public:
  explicit SpExecutor(const ExecutorConfig& config = {}) : config_(config) {}

  /// Runs main_fn for rounds [0, rounds) on the calling thread and helper_fn
  /// on a second thread under the staggering protocol. Exceptions from
  /// main_fn propagate; helper_fn must not throw (it would have nowhere to
  /// go — prefetching is best-effort).
  ExecutorReport run(std::uint32_t rounds, const RoundFn& main_fn,
                     const RoundFn& helper_fn);

 private:
  ExecutorConfig config_;
};

/// Non-binding prefetch of the line containing `p`.
inline void prefetch_line(const void* p) noexcept {
  __builtin_prefetch(p, 0 /*read*/, 1 /*low temporal locality*/);
}

}  // namespace spf::rt
