#include "spf/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "spf/common/assert.hpp"

namespace spf {

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  SPF_ASSERT(hi > lo && buckets > 0, "histogram needs a positive range and buckets");
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target) {
      const double frac = c > 0 ? (target - cum) / c : 0.0;
      return bucket_lo(i) + frac * width_;
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_rows) const {
  std::ostringstream out;
  const std::size_t step = std::max<std::size_t>(1, counts_.size() / max_rows);
  for (std::size_t i = 0; i < counts_.size(); i += step) {
    std::uint64_t merged = 0;
    for (std::size_t j = i; j < std::min(i + step, counts_.size()); ++j) merged += counts_[j];
    out << "[" << bucket_lo(i) << ", " << bucket_hi(std::min(i + step, counts_.size()) - 1)
        << "): " << merged << "\n";
  }
  return out.str();
}

double QuantileSketch::min() {
  ensure_sorted();
  SPF_ASSERT(!values_.empty(), "quantile of empty sketch");
  return values_.front();
}

double QuantileSketch::max() {
  ensure_sorted();
  SPF_ASSERT(!values_.empty(), "quantile of empty sketch");
  return values_.back();
}

double QuantileSketch::quantile(double q) {
  ensure_sorted();
  SPF_ASSERT(!values_.empty(), "quantile of empty sketch");
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values_.size() - 1) + 0.5);
  return values_[rank];
}

void QuantileSketch::ensure_sorted() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

}  // namespace spf
