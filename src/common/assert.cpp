#include "spf/common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace spf {

void assert_fail(std::string_view expr, std::string_view file, int line,
                 std::string_view msg) {
  std::fprintf(stderr, "spf assertion failed: %.*s\n  at %.*s:%d\n  %.*s\n",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace spf
