#include "spf/common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace spf {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
  for (const auto& [name, value] : flags_) {
    (void)value;
    consumed_[name] = false;
  }
}

bool CliFlags::has(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  consumed_[name] = true;
  return true;
}

std::string CliFlags::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  consumed_[name] = true;
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  consumed_[name] = true;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double CliFlags::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  consumed_[name] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  consumed_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on";
}

std::vector<std::string> CliFlags::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [name, used] : consumed_) {
    if (!used) out.push_back(name);
  }
  return out;
}

}  // namespace spf
