#include "spf/common/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "spf/common/assert.hpp"

namespace spf {

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SPF_ASSERT(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  SPF_ASSERT(!rows_.empty(), "call row() before add()");
  SPF_ASSERT(rows_.back().size() < headers_.size(), "row has too many cells");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }

Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }

Table& Table::add(double v, int precision) { return add(format_fixed(v, precision)); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (auto w : widths) rule += w + 2;
  out << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& out) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      out << '"';
      for (char ch : cell) {
        if (ch == '"') out << '"';
        out << ch;
      }
      out << '"';
    } else {
      out << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      emit_cell(cells[c]);
    }
    out << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  print_csv(out);
  return out.str();
}

}  // namespace spf
