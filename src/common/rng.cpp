#include "spf/common/rng.hpp"

#include "spf/common/assert.hpp"

namespace spf {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 mix(seed);
  for (auto& word : s_) word = mix.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  SPF_DEBUG_ASSERT(bound > 0, "bound must be positive");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) noexcept {
  SPF_DEBUG_ASSERT(lo <= hi, "empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

}  // namespace spf
