// Lightweight always-on assertion support.
//
// Simulator state invariants are cheap relative to the work they guard, so
// SPF_ASSERT stays enabled in release builds; SPF_DEBUG_ASSERT compiles away
// outside debug builds for per-access hot-path checks.
#pragma once

#include <string_view>

namespace spf {

/// Terminates with a diagnostic. Used by the assertion macros; call directly
/// for unreachable code paths.
[[noreturn]] void assert_fail(std::string_view expr, std::string_view file,
                              int line, std::string_view msg);

}  // namespace spf

#define SPF_ASSERT(expr, msg)                                   \
  do {                                                          \
    if (!(expr)) [[unlikely]] {                                 \
      ::spf::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                           \
  } while (false)

#ifndef NDEBUG
#define SPF_DEBUG_ASSERT(expr, msg) SPF_ASSERT(expr, msg)
#else
#define SPF_DEBUG_ASSERT(expr, msg) \
  do {                              \
  } while (false)
#endif

#define SPF_UNREACHABLE(msg) ::spf::assert_fail("unreachable", __FILE__, __LINE__, (msg))

// Force-inline for per-access hot-path functions the optimizer's size
// heuristics would otherwise outline (profiled: letting Cache::access become
// a call costs double-digit percent on the simulator's replay loop).
#if defined(__GNUC__) || defined(__clang__)
#define SPF_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define SPF_ALWAYS_INLINE inline
#endif
