// Fixed-capacity ring buffer. Used by the burst sampler (bounded sample
// windows) and the pollution tracker's eviction shadow (bounded recency
// window) where unbounded growth would distort both memory use and results.
#pragma once

#include <cstddef>
#include <vector>

#include "spf/common/assert.hpp"

namespace spf {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    SPF_ASSERT(capacity > 0, "ring buffer capacity must be positive");
  }

  /// Appends, overwriting the oldest element when full. Returns true if an
  /// element was evicted (and copies it to *evicted when non-null).
  bool push(const T& value, T* evicted = nullptr) {
    bool dropped = false;
    if (size_ == slots_.size()) {
      if (evicted != nullptr) *evicted = slots_[head_];
      head_ = (head_ + 1) % slots_.size();
      --size_;
      dropped = true;
    }
    slots_[(head_ + size_) % slots_.size()] = value;
    ++size_;
    return dropped;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == slots_.size(); }

  /// i = 0 is the oldest element.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    SPF_DEBUG_ASSERT(i < size_, "ring buffer index out of range");
    return slots_[(head_ + i) % slots_.size()];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// As-if-freshly-constructed with `capacity`, reusing slot storage.
  void reset(std::size_t capacity) {
    SPF_ASSERT(capacity > 0, "ring buffer capacity must be positive");
    slots_.assign(capacity, T{});
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace spf
