// Vectorized first-match search over packed 64-bit keys.
//
// The cache's per-set tag rows and the MSHR file's outstanding-line array are
// both tiny packed u64 arrays scanned on every simulated access. This header
// builds an equality bitmask over such an array — 2 keys per compare with
// SSE2, 4 with AVX2 — so callers resolve "which slot holds this key" with one
// countr_zero instead of a branchy element-at-a-time loop. Bit i of the mask
// corresponds to slot i, so countr_zero preserves lowest-slot-wins order and
// artifacts stay byte-identical with the scalar scan.
//
// Two escape hatches keep the scalar path honest:
//   - compile time: define SPF_NO_SIMD (SPF_SIMD_MATCH stays undefined);
//   - run time: set the SPF_FORCE_SCALAR_TAGS environment variable (any
//     value) — callers check `force_scalar` before taking the vector path,
//     which is how CI exercises the fallback on SIMD hardware.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdlib>

#if (defined(__SSE2__) || defined(__AVX2__)) && !defined(SPF_NO_SIMD)
#define SPF_SIMD_MATCH 1
#include <immintrin.h>
#endif

namespace spf::simd {

/// Read once per process; pins every match to the scalar path when set.
inline const bool force_scalar =
    std::getenv("SPF_FORCE_SCALAR_TAGS") != nullptr;

#ifdef SPF_SIMD_MATCH
/// Bit i set iff vals[i] == needle, for i in [0, n). n may exceed 64 only if
/// the caller ignores the high matches; all current users keep n <= 64.
inline std::uint64_t match_mask_u64(const std::uint64_t* vals, std::uint32_t n,
                                    std::uint64_t needle) noexcept {
  std::uint64_t m = 0;
  std::uint32_t i = 0;
#ifdef __AVX2__
  const __m256i needle4 = _mm256_set1_epi64x(static_cast<long long>(needle));
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    const __m256i eq = _mm256_cmpeq_epi64(v, needle4);
    m |= static_cast<std::uint64_t>(
             _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
         << i;
  }
#endif
  const __m128i needle2 = _mm_set1_epi64x(static_cast<long long>(needle));
  for (; i + 2 <= n; i += 2) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    // SSE2 has no 64-bit integer compare; build one from the 32-bit compare
    // by requiring both halves of each lane to match.
    const __m128i eq32 = _mm_cmpeq_epi32(v, needle2);
    const __m128i eq64 =
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    m |= static_cast<std::uint64_t>(_mm_movemask_pd(_mm_castsi128_pd(eq64)))
         << i;
  }
  for (; i < n; ++i) {
    m |= static_cast<std::uint64_t>(vals[i] == needle) << i;
  }
  return m;
}
#endif  // SPF_SIMD_MATCH

}  // namespace spf::simd
