// Deterministic pseudo-random number generation for workload builders and
// replacement policies. xoshiro256** is fast, high quality, and — unlike
// std::mt19937 — has a compact state that copies cheaply, which matters when
// every cache set carries its own stream for the Random policy.
#pragma once

#include <cstdint>

namespace spf {

/// SplitMix64: used to expand a single seed into xoshiro state. Also a fine
/// standalone generator for hashing-style uses.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface so <random> distributions work.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace spf
