// Minimal --key=value flag parser for the bench/example binaries. Every
// binary in bench/ must run with no arguments (CI sweeps `for b in bench/*`),
// so all flags carry defaults; unknown flags are an error to catch typos.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spf {

class CliFlags {
 public:
  /// Parses argv of the form --name=value or --name (boolean true).
  /// Positional arguments are collected separately.
  CliFlags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Flags that were parsed but never queried — call after all get()s to
  /// reject typos. Returns the unknown names.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace spf
