// Small table builder used by the benchmark harnesses to print both an
// aligned human-readable table (what the paper's tables/figures report) and a
// machine-readable CSV for replotting.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace spf {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent add() calls append cells to it.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  /// Doubles render with a fixed number of fractional digits (default 4).
  Table& add(double v, int precision = 4);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Aligned, padded text table.
  void print(std::ostream& out) const;
  /// RFC-4180-ish CSV (cells containing comma/quote/newline get quoted).
  void print_csv(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats v to `precision` fractional digits (fixed notation).
std::string format_fixed(double v, int precision);

}  // namespace spf
