// Streaming statistics used across the profiler and benchmark harnesses:
// Welford running moments, bounded histograms, and percentile summaries of
// Set Affinity distributions.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace spf {

/// Numerically stable streaming mean/variance/min/max (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket linear histogram over [lo, hi); out-of-range samples clamp to
/// the edge buckets so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;
  /// Linear-interpolated quantile estimate, q in [0,1].
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] std::string to_string(std::size_t max_rows = 16) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Exact order statistics over a materialized sample (used for Set Affinity
/// distributions, which are small: one value per touched cache set).
class QuantileSketch {
 public:
  void add(double x) { values_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double min();
  [[nodiscard]] double max();
  /// Nearest-rank quantile, q in [0,1].
  [[nodiscard]] double quantile(double q);

 private:
  void ensure_sorted();

  std::vector<double> values_;
  bool sorted_ = true;
};

}  // namespace spf
