// Bump-pointer arena and a std::allocator adapter over it.
//
// A sweep cell builds caches, an MSHR file, a pollution shadow and a helper
// trace, runs one simulation, and throws everything away. Under
// spf::orchestrate fan-out those construct/teardown bursts all hit the
// global heap from many threads at once. An Arena turns the burst into one
// pointer bump per container growth and makes teardown O(1): memory is
// reclaimed when the arena is destroyed (or release()d), never per object.
//
// ArenaAllocator<T> plugs the arena into standard containers. A
// default-constructed allocator (no arena) degrades to the global heap, so
// arena-aware types stay usable without one. deallocate() on an arena-backed
// allocation is a no-op by design — callers that reallocate in a loop should
// reserve up front or reuse capacity (the simulator's reset paths do).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace spf {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (power of two), growing by a
  /// fresh chunk when the current one is exhausted. Never returns nullptr.
  void* allocate(std::size_t bytes, std::size_t align) {
    Chunk* c = chunks_.empty() ? nullptr : &chunks_.back();
    std::size_t offset = c ? aligned(c->used, align) : 0;
    if (c == nullptr || offset + bytes > c->size) {
      const std::size_t size = bytes + align > chunk_bytes_ ? bytes + align
                                                            : chunk_bytes_;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size, 0});
      c = &chunks_.back();
      offset = aligned(reinterpret_cast<std::uintptr_t>(c->data.get()), align) -
               reinterpret_cast<std::uintptr_t>(c->data.get());
    }
    void* p = c->data.get() + offset;
    c->used = offset + bytes;
    bytes_served_ += bytes;
    return p;
  }

  /// Frees every chunk. Only safe once no object allocated from the arena is
  /// alive — the reuse paths never call this while containers hold storage.
  void release() noexcept {
    chunks_.clear();
    bytes_served_ = 0;
  }

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }
  /// Total bytes handed out since construction/release (monotone; includes
  /// storage later abandoned by container growth).
  [[nodiscard]] std::size_t bytes_served() const noexcept {
    return bytes_served_;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t aligned(std::size_t v, std::size_t align) noexcept {
    return (v + align - 1) & ~(align - 1);
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t bytes_served_ = 0;
};

/// Standard allocator over an Arena; null arena = global heap. Stateful:
/// containers propagate it on copy/move/swap so arena ownership follows the
/// storage it manages.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena storage is reclaimed wholesale by the arena, never per block.
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace spf
