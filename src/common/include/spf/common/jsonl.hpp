// Minimal JSON Lines emitter for machine-readable sweep artifacts.
//
// One JsonObject per record; fields render in insertion order with
// deterministic formatting (doubles via %.17g round-trip notation), so two
// runs that produce the same values emit byte-identical lines — the property
// the orchestration engine's determinism tests pin down.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace spf {

class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value);
  JsonObject& add(const std::string& key, const char* value);
  JsonObject& add(const std::string& key, std::int64_t value);
  JsonObject& add(const std::string& key, std::uint64_t value);
  JsonObject& add(const std::string& key, std::uint32_t value);
  JsonObject& add(const std::string& key, double value);
  JsonObject& add(const std::string& key, bool value);
  JsonObject& add_null(const std::string& key);
  /// Splices `raw_json` in verbatim — the caller guarantees it is valid JSON
  /// (nested objects/arrays, e.g. trace-event "args"). No escaping applied.
  JsonObject& add_raw(const std::string& key, const std::string& raw_json);

  /// The object as one line: {"k":v,...} — no trailing newline.
  [[nodiscard]] std::string line() const;

 private:
  void append_key(const std::string& key);
  std::string body_;
};

/// Escapes per RFC 8259 (quote, backslash, and control characters).
std::string json_escape(const std::string& s);

/// Deterministic 17-significant-digit round-trip formatting ("%.17g", with
/// non-finite values rendered as null per JSON).
std::string json_double(double v);

/// Writes `obj` as one JSONL record (line + '\n').
std::ostream& operator<<(std::ostream& out, const JsonObject& obj);

}  // namespace spf
