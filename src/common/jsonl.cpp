#include "spf/common/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace spf {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonObject::append_key(const std::string& key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
}

JsonObject& JsonObject::add(const std::string& key, const std::string& value) {
  append_key(key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

JsonObject& JsonObject::add(const std::string& key, std::int64_t value) {
  append_key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, std::uint64_t value) {
  append_key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, std::uint32_t value) {
  return add(key, static_cast<std::uint64_t>(value));
}

JsonObject& JsonObject::add(const std::string& key, double value) {
  append_key(key);
  body_ += json_double(value);
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, bool value) {
  append_key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::add_raw(const std::string& key,
                                const std::string& raw_json) {
  append_key(key);
  body_ += raw_json;
  return *this;
}

JsonObject& JsonObject::add_null(const std::string& key) {
  append_key(key);
  body_ += "null";
  return *this;
}

std::string JsonObject::line() const { return "{" + body_ + "}"; }

std::ostream& operator<<(std::ostream& out, const JsonObject& obj) {
  return out << obj.line() << '\n';
}

}  // namespace spf
