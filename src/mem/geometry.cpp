#include "spf/mem/geometry.hpp"

#include <bit>
#include <sstream>

#include "spf/common/assert.hpp"

namespace spf {

CacheGeometry::CacheGeometry(std::uint64_t size_bytes, std::uint32_t ways,
                             std::uint32_t line_bytes)
    : size_bytes_(size_bytes), ways_(ways), line_bytes_(line_bytes) {
  SPF_ASSERT(std::has_single_bit(size_bytes), "cache size must be a power of two");
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(ways)),
             "associativity must be a power of two");
  SPF_ASSERT(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)),
             "line size must be a power of two");
  SPF_ASSERT(size_bytes >= static_cast<std::uint64_t>(ways) * line_bytes,
             "cache must hold at least one set");
  num_sets_ = size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(line_bytes)));
  set_shift_ = static_cast<std::uint32_t>(std::countr_zero(num_sets_));
  set_mask_ = num_sets_ - 1;
}

std::string CacheGeometry::to_string() const {
  std::ostringstream out;
  if (size_bytes_ >= 1024 * 1024 && size_bytes_ % (1024 * 1024) == 0) {
    out << size_bytes_ / (1024 * 1024) << "MB";
  } else if (size_bytes_ >= 1024 && size_bytes_ % 1024 == 0) {
    out << size_bytes_ / 1024 << "KB";
  } else {
    out << size_bytes_ << "B";
  }
  out << ", " << ways_ << "-way, " << line_bytes_ << "B line, " << num_sets_
      << " sets";
  return out.str();
}

}  // namespace spf
