// Fundamental vocabulary types shared by every simulator layer.
#pragma once

#include <cstdint>

namespace spf {

/// Byte address in the simulated (or traced) address space.
using Addr = std::uint64_t;

/// Cache-line-granular address: Addr >> log2(line size).
using LineAddr = std::uint64_t;

/// Simulated clock cycles.
using Cycle = std::uint64_t;

/// Simulated core index.
using CoreId = std::uint32_t;

/// What kind of memory operation an access is.
enum class AccessKind : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  /// Non-binding software prefetch (helper thread or explicit prefetch
  /// instruction): fills the cache but never stalls the issuer on the fill.
  kPrefetch = 2,
};

/// Which agent caused a cache line to be filled. The pollution tracker keys
/// its three paper-defined cases off this tag.
enum class FillOrigin : std::uint8_t {
  /// Demand access from a main (computation) thread.
  kDemand = 0,
  /// Software prefetch issued by the SP helper thread.
  kHelper = 1,
  /// Hardware prefetcher (stream or DPL stride).
  kHardware = 2,
};

[[nodiscard]] constexpr const char* to_string(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kPrefetch: return "prefetch";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(FillOrigin o) noexcept {
  switch (o) {
    case FillOrigin::kDemand: return "demand";
    case FillOrigin::kHelper: return "helper";
    case FillOrigin::kHardware: return "hardware";
  }
  return "?";
}

}  // namespace spf
