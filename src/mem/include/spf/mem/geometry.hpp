// Cache geometry: size/ways/line-size triple plus the derived set/tag
// arithmetic every cache-indexed structure uses. Defaults mirror the paper's
// testbed (Intel Core 2 Quad Q6600, Table I).
#pragma once

#include <cstdint>
#include <string>

#include "spf/mem/types.hpp"

namespace spf {

/// Immutable description of one cache level's geometry. All three parameters
/// must be powers of two; construction validates.
class CacheGeometry {
 public:
  CacheGeometry(std::uint64_t size_bytes, std::uint32_t ways,
                std::uint32_t line_bytes);

  [[nodiscard]] std::uint64_t size_bytes() const noexcept { return size_bytes_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint32_t line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] std::uint64_t num_sets() const noexcept { return num_sets_; }
  [[nodiscard]] std::uint32_t line_shift() const noexcept { return line_shift_; }

  [[nodiscard]] LineAddr line_of(Addr a) const noexcept { return a >> line_shift_; }
  [[nodiscard]] Addr base_of(LineAddr l) const noexcept {
    return l << line_shift_;
  }
  [[nodiscard]] std::uint64_t set_of_line(LineAddr l) const noexcept {
    return l & set_mask_;
  }
  [[nodiscard]] std::uint64_t set_of(Addr a) const noexcept {
    return set_of_line(line_of(a));
  }
  [[nodiscard]] std::uint64_t tag_of_line(LineAddr l) const noexcept {
    return l >> set_shift_;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const CacheGeometry&, const CacheGeometry&) = default;

  /// Paper Table I geometries.
  static CacheGeometry core2_l1d() { return {32 * 1024, 8, 64}; }
  static CacheGeometry core2_l2() { return {4 * 1024 * 1024, 16, 64}; }

 private:
  std::uint64_t size_bytes_;
  std::uint32_t ways_;
  std::uint32_t line_bytes_;
  std::uint64_t num_sets_;
  std::uint32_t line_shift_;
  std::uint32_t set_shift_;
  std::uint64_t set_mask_;
};

}  // namespace spf
