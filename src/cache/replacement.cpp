#include "spf/cache/replacement.hpp"

#include <stdexcept>

namespace spf {

const char* to_string(ReplacementKind k) noexcept {
  switch (k) {
    case ReplacementKind::kLru: return "lru";
    case ReplacementKind::kTreePlru: return "plru";
    case ReplacementKind::kFifo: return "fifo";
    case ReplacementKind::kRandom: return "random";
    case ReplacementKind::kSrrip: return "srrip";
  }
  return "?";
}

ReplacementKind replacement_from_string(const std::string& s) {
  if (s == "lru") return ReplacementKind::kLru;
  if (s == "plru") return ReplacementKind::kTreePlru;
  if (s == "fifo") return ReplacementKind::kFifo;
  if (s == "random") return ReplacementKind::kRandom;
  if (s == "srrip") return ReplacementKind::kSrrip;
  throw std::invalid_argument("unknown replacement policy: " + s);
}

std::variant<LruState, TreePlruState, FifoState, RandomState, SrripState>
ReplacementState::make(ReplacementKind kind, std::uint64_t num_sets,
                       std::uint32_t ways, std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::kLru: return LruState(num_sets, ways);
    case ReplacementKind::kTreePlru: return TreePlruState(num_sets, ways);
    case ReplacementKind::kFifo: return FifoState(num_sets, ways);
    case ReplacementKind::kRandom: return RandomState(ways, seed);
    case ReplacementKind::kSrrip: return SrripState(num_sets, ways);
  }
  SPF_UNREACHABLE("bad ReplacementKind");
}

ReplacementState::ReplacementState(ReplacementKind kind, std::uint64_t num_sets,
                                   std::uint32_t ways, std::uint64_t seed)
    : state_(make(kind, num_sets, ways, seed)) {}

}  // namespace spf
