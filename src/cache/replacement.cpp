#include "spf/cache/replacement.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

#include "spf/common/assert.hpp"

namespace spf {
namespace {

/// True LRU via per-line monotonic reference stamps; victim is the minimum
/// stamp. Linear scan over <= 16 ways is cheaper than maintaining a list.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint64_t num_sets, std::uint32_t ways)
      : ways_(ways), stamps_(num_sets * ways, 0) {}

  void on_hit(std::uint64_t set, std::uint32_t way) override {
    stamps_[set * ways_ + way] = ++clock_;
  }
  void on_fill(std::uint64_t set, std::uint32_t way) override {
    stamps_[set * ways_ + way] = ++clock_;
  }
  std::uint32_t victim(std::uint64_t set) override {
    std::uint32_t best = 0;
    std::uint64_t best_stamp = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const std::uint64_t s = stamps_[set * ways_ + w];
      if (s < best_stamp) {
        best_stamp = s;
        best = w;
      }
    }
    return best;
  }
  ReplacementKind kind() const noexcept override { return ReplacementKind::kLru; }

 private:
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamps_;
};

/// Tree pseudo-LRU: one bit per internal node of a binary tree over the ways.
/// This is what real L2s (including Core 2's) approximate LRU with.
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::uint64_t num_sets, std::uint32_t ways)
      : ways_(ways), bits_(num_sets * (ways > 1 ? ways - 1 : 1), 0) {
    SPF_ASSERT((ways & (ways - 1)) == 0, "tree-PLRU needs power-of-two ways");
  }

  void on_hit(std::uint64_t set, std::uint32_t way) override { touch(set, way); }
  void on_fill(std::uint64_t set, std::uint32_t way) override { touch(set, way); }

  std::uint32_t victim(std::uint64_t set) override {
    if (ways_ == 1) return 0;
    std::uint8_t* tree = &bits_[set * (ways_ - 1)];
    std::uint32_t node = 0;
    // Follow the bits toward the pseudo-least-recently-used leaf: bit==0
    // means "left subtree is older".
    std::uint32_t leaf_base = 0;
    std::uint32_t span = ways_;
    while (span > 1) {
      const bool go_right = tree[node] != 0;
      span /= 2;
      if (go_right) leaf_base += span;
      node = 2 * node + (go_right ? 2 : 1);
    }
    return leaf_base;
  }
  ReplacementKind kind() const noexcept override {
    return ReplacementKind::kTreePlru;
  }

 private:
  void touch(std::uint64_t set, std::uint32_t way) {
    if (ways_ == 1) return;
    std::uint8_t* tree = &bits_[set * (ways_ - 1)];
    std::uint32_t node = 0;
    std::uint32_t leaf_base = 0;
    std::uint32_t span = ways_;
    while (span > 1) {
      span /= 2;
      const bool in_right = way >= leaf_base + span;
      // Point the bit away from the touched way.
      tree[node] = in_right ? 0 : 1;
      if (in_right) leaf_base += span;
      node = 2 * node + (in_right ? 2 : 1);
    }
  }

  std::uint32_t ways_;
  std::vector<std::uint8_t> bits_;
};

/// FIFO: victim is the oldest *fill*; hits do not refresh.
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy(std::uint64_t num_sets, std::uint32_t ways)
      : ways_(ways), stamps_(num_sets * ways, 0) {}

  void on_hit(std::uint64_t, std::uint32_t) override {}
  void on_fill(std::uint64_t set, std::uint32_t way) override {
    stamps_[set * ways_ + way] = ++clock_;
  }
  std::uint32_t victim(std::uint64_t set) override {
    std::uint32_t best = 0;
    std::uint64_t best_stamp = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const std::uint64_t s = stamps_[set * ways_ + w];
      if (s < best_stamp) {
        best_stamp = s;
        best = w;
      }
    }
    return best;
  }
  ReplacementKind kind() const noexcept override { return ReplacementKind::kFifo; }

 private:
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamps_;
};

class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint32_t ways, std::uint64_t seed) : ways_(ways), rng_(seed) {}

  void on_hit(std::uint64_t, std::uint32_t) override {}
  void on_fill(std::uint64_t, std::uint32_t) override {}
  std::uint32_t victim(std::uint64_t) override {
    return static_cast<std::uint32_t>(rng_.below(ways_));
  }
  ReplacementKind kind() const noexcept override {
    return ReplacementKind::kRandom;
  }

 private:
  std::uint32_t ways_;
  Xoshiro256 rng_;
};

/// SRRIP (Jaleel et al., ISCA'10) with 2-bit re-reference prediction values.
/// Fills insert at RRPV=2 (long re-reference), hits promote to 0, victims are
/// lines at RRPV=3 (aging the whole set until one exists).
class SrripPolicy final : public ReplacementPolicy {
 public:
  SrripPolicy(std::uint64_t num_sets, std::uint32_t ways)
      : ways_(ways), rrpv_(num_sets * ways, kMax) {}

  void on_hit(std::uint64_t set, std::uint32_t way) override {
    rrpv_[set * ways_ + way] = 0;
  }
  void on_fill(std::uint64_t set, std::uint32_t way) override {
    rrpv_[set * ways_ + way] = kLong;
  }
  std::uint32_t victim(std::uint64_t set) override {
    std::uint8_t* row = &rrpv_[set * ways_];
    for (;;) {
      for (std::uint32_t w = 0; w < ways_; ++w) {
        if (row[w] == kMax) return w;
      }
      for (std::uint32_t w = 0; w < ways_; ++w) ++row[w];
    }
  }
  ReplacementKind kind() const noexcept override { return ReplacementKind::kSrrip; }

 private:
  static constexpr std::uint8_t kMax = 3;
  static constexpr std::uint8_t kLong = 2;

  std::uint32_t ways_;
  std::vector<std::uint8_t> rrpv_;
};

}  // namespace

const char* to_string(ReplacementKind k) noexcept {
  switch (k) {
    case ReplacementKind::kLru: return "lru";
    case ReplacementKind::kTreePlru: return "plru";
    case ReplacementKind::kFifo: return "fifo";
    case ReplacementKind::kRandom: return "random";
    case ReplacementKind::kSrrip: return "srrip";
  }
  return "?";
}

ReplacementKind replacement_from_string(const std::string& s) {
  if (s == "lru") return ReplacementKind::kLru;
  if (s == "plru") return ReplacementKind::kTreePlru;
  if (s == "fifo") return ReplacementKind::kFifo;
  if (s == "random") return ReplacementKind::kRandom;
  if (s == "srrip") return ReplacementKind::kSrrip;
  throw std::invalid_argument("unknown replacement policy: " + s);
}

std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind,
                                                    std::uint64_t num_sets,
                                                    std::uint32_t ways,
                                                    std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(num_sets, ways);
    case ReplacementKind::kTreePlru:
      return std::make_unique<TreePlruPolicy>(num_sets, ways);
    case ReplacementKind::kFifo:
      return std::make_unique<FifoPolicy>(num_sets, ways);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomPolicy>(ways, seed);
    case ReplacementKind::kSrrip:
      return std::make_unique<SrripPolicy>(num_sets, ways);
  }
  SPF_UNREACHABLE("bad ReplacementKind");
}

}  // namespace spf
