#include "spf/cache/cache.hpp"

#include <bit>

#include "spf/common/assert.hpp"

namespace spf {

Cache::Cache(const CacheGeometry& geometry, ReplacementKind policy,
             std::uint64_t seed, Arena* arena)
    : geometry_(geometry),
      policy_(policy, geometry.num_sets(), geometry.ways(), seed),
      lines_(geometry.num_sets() * geometry.ways(),
             ArenaAllocator<CacheLine>(arena)),
      tags_(geometry.num_sets() * geometry.ways(), 0,
            ArenaAllocator<LineAddr>(arena)),
      valid_(geometry.num_sets(), 0, ArenaAllocator<std::uint64_t>(arena)) {
  SPF_ASSERT(geometry.ways() <= 64, "validity bitmask holds at most 64 ways");
}

void Cache::reset_to(const CacheGeometry& geometry, ReplacementKind policy,
                     std::uint64_t seed) {
  SPF_ASSERT(geometry.ways() <= 64, "validity bitmask holds at most 64 ways");
  const std::size_t total = geometry.num_sets() * geometry.ways();
  geometry_ = geometry;
  policy_.reset_to(policy, geometry.num_sets(), geometry.ways(), seed);
  // assign() reuses capacity; a same-shape reset touches no allocator at all
  // (arena or heap), which is what makes pooled ExperimentContext reuse pay.
  lines_.assign(total, CacheLine{});
  tags_.assign(total, 0);
  valid_.assign(geometry.num_sets(), 0);
  stats_ = CacheStats{};
}

std::optional<Eviction> Cache::fill(LineAddr line, FillOrigin origin, CoreId core,
                                    Cycle now, std::uint32_t* slot_out) {
  const std::uint64_t set = geometry_.set_of_line(line);
  const std::size_t base = set * geometry_.ways();

  // Refresh in place if the line already landed (racing fills): promote its
  // recency like a hit would.
  if (const std::uint32_t present = find_way(set, line); present != kNoWay) {
    policy_.on_hit(set, present);
    if (slot_out != nullptr) {
      *slot_out = static_cast<std::uint32_t>(base + present);
    }
    // A demand fill upgrades a prefetch-origin line: the processor now
    // genuinely wants it. A prefetch completing onto a demand-filled line
    // must not *downgrade* provenance.
    if (origin == FillOrigin::kDemand) {
      lines_[base + present].used_since_fill = true;
    }
    return std::nullopt;
  }

  return fill_absent(line, origin, core, now, slot_out);
}

bool Cache::mark_dirty(LineAddr line) {
  const std::uint64_t set = geometry_.set_of_line(line);
  const std::uint32_t way = find_way(set, line);
  if (way == kNoWay) return false;
  lines_[set * geometry_.ways() + way].dirty = true;
  return true;
}

bool Cache::invalidate(LineAddr line) {
  const std::uint64_t set = geometry_.set_of_line(line);
  const std::uint32_t way = find_way(set, line);
  if (way == kNoWay) return false;
  const std::size_t idx = set * geometry_.ways() + way;
  lines_[idx] = CacheLine{};
  tags_[idx] = 0;
  valid_[set] &= ~(std::uint64_t{1} << way);
  return true;
}

std::uint32_t Cache::set_occupancy(std::uint64_t set) const {
  SPF_ASSERT(set < geometry_.num_sets(), "set index out of range");
  return static_cast<std::uint32_t>(std::popcount(valid_[set]));
}

}  // namespace spf
