#include "spf/cache/cache.hpp"

#include "spf/common/assert.hpp"

namespace spf {

Cache::Cache(const CacheGeometry& geometry, ReplacementKind policy,
             std::uint64_t seed)
    : geometry_(geometry),
      policy_(make_replacement(policy, geometry.num_sets(), geometry.ways(), seed)),
      lines_(geometry.num_sets() * geometry.ways()) {}

CacheLine* Cache::find(LineAddr line) noexcept {
  const std::uint64_t set = geometry_.set_of_line(line);
  CacheLine* base = &lines_[set * geometry_.ways()];
  for (std::uint32_t w = 0; w < geometry_.ways(); ++w) {
    if (base[w].valid && base[w].line == line) return &base[w];
  }
  return nullptr;
}

const CacheLine* Cache::find(LineAddr line) const noexcept {
  return const_cast<Cache*>(this)->find(line);
}

const CacheLine* Cache::probe(LineAddr line) const noexcept { return find(line); }

bool Cache::access(LineAddr line, AccessKind kind, Cycle /*now*/) {
  ++stats_.lookups;
  CacheLine* hit = find(line);
  if (hit == nullptr) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  const std::uint64_t set = geometry_.set_of_line(line);
  const auto way = static_cast<std::uint32_t>(hit - &lines_[set * geometry_.ways()]);
  policy_->on_hit(set, way);
  if (kind != AccessKind::kPrefetch) hit->used_since_fill = true;
  if (kind == AccessKind::kWrite) hit->dirty = true;
  return true;
}

std::optional<Eviction> Cache::fill(LineAddr line, FillOrigin origin, CoreId core,
                                    Cycle now) {
  const std::uint64_t set = geometry_.set_of_line(line);
  CacheLine* base = &lines_[set * geometry_.ways()];

  // Refresh in place if the line already landed (racing fills): promote its
  // recency like a hit would.
  if (CacheLine* present = find(line)) {
    const auto way =
        static_cast<std::uint32_t>(present - &lines_[set * geometry_.ways()]);
    policy_->on_hit(set, way);
    // A demand fill upgrades a prefetch-origin line: the processor now
    // genuinely wants it. A prefetch completing onto a demand-filled line
    // must not *downgrade* provenance.
    if (origin == FillOrigin::kDemand) {
      present->used_since_fill = true;
    }
    return std::nullopt;
  }

  ++stats_.fills;
  std::uint32_t way = geometry_.ways();
  for (std::uint32_t w = 0; w < geometry_.ways(); ++w) {
    if (!base[w].valid) {
      way = w;
      break;
    }
  }

  std::optional<Eviction> evicted;
  if (way == geometry_.ways()) {
    way = policy_->victim(set);
    SPF_DEBUG_ASSERT(way < geometry_.ways(), "policy returned bad way");
    CacheLine& victim = base[way];
    ++stats_.evictions;
    if (!victim.used_since_fill) {
      if (victim.origin == FillOrigin::kHelper) ++stats_.evicted_unused_helper;
      if (victim.origin == FillOrigin::kHardware) ++stats_.evicted_unused_hw;
    }
    evicted = Eviction{victim, line, origin, now};
  }

  base[way] = CacheLine{
      .line = line,
      .valid = true,
      .dirty = false,
      .origin = origin,
      .used_since_fill = origin == FillOrigin::kDemand,
      .filler_core = core,
      .fill_time = now,
  };
  policy_->on_fill(set, way);
  return evicted;
}

bool Cache::mark_dirty(LineAddr line) {
  if (CacheLine* hit = find(line)) {
    hit->dirty = true;
    return true;
  }
  return false;
}

bool Cache::invalidate(LineAddr line) {
  if (CacheLine* hit = find(line)) {
    *hit = CacheLine{};
    return true;
  }
  return false;
}

std::uint32_t Cache::set_occupancy(std::uint64_t set) const {
  SPF_ASSERT(set < geometry_.num_sets(), "set index out of range");
  const CacheLine* base = &lines_[set * geometry_.ways()];
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < geometry_.ways(); ++w) {
    if (base[w].valid) ++n;
  }
  return n;
}

void Cache::for_each_line(const std::function<void(const CacheLine&)>& fn) const {
  for (const CacheLine& l : lines_) {
    if (l.valid) fn(l);
  }
}

}  // namespace spf
