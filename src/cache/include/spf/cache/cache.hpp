// Set-associative cache model with per-line provenance metadata.
//
// The cache is a *state* model, not a timing model: lookup/fill/evict are
// immediate. Timing (miss latency, MSHR occupancy, bandwidth) is layered on
// by spf_mshr/spf_memsys/spf_sim. Keeping state and timing separate lets the
// Set Affinity profiler reuse the state model stand-alone.
//
// Every line remembers who filled it (FillOrigin) and whether a demand access
// touched it since the fill — exactly the metadata the paper's three cache
// pollution cases are defined over.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "spf/cache/replacement.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/mem/types.hpp"

namespace spf {

/// Metadata carried by each valid cache line.
struct CacheLine {
  LineAddr line = 0;
  bool valid = false;
  bool dirty = false;
  /// Who caused this line's fill.
  FillOrigin origin = FillOrigin::kDemand;
  /// True once a demand (non-prefetch) access hits the line after its fill.
  bool used_since_fill = false;
  /// Core whose request filled the line.
  CoreId filler_core = 0;
  /// Simulated time of the fill.
  Cycle fill_time = 0;
};

/// A line pushed out by a fill, annotated with its end-of-life metadata.
struct Eviction {
  CacheLine victim;
  /// Line whose fill displaced the victim.
  LineAddr replaced_by = 0;
  FillOrigin replaced_by_origin = FillOrigin::kDemand;
  Cycle when = 0;
};

/// Aggregate counters. Hit/miss here are *state* hits (line valid), i.e. the
/// paper's "totally" classification before MSHR effects are applied.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  /// Evictions whose victim was an unused prefetch, split by the victim's
  /// origin (paper pollution cases 2 and 3 raw material).
  std::uint64_t evicted_unused_helper = 0;
  std::uint64_t evicted_unused_hw = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

class Cache {
 public:
  Cache(const CacheGeometry& geometry, ReplacementKind policy,
        std::uint64_t seed = 0x5eed);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;
  Cache(Cache&&) = default;
  Cache& operator=(Cache&&) = default;

  [[nodiscard]] const CacheGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] ReplacementKind policy() const noexcept { return policy_->kind(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  /// Side-effect-free lookup: returns the line if present, without touching
  /// replacement state or counters.
  [[nodiscard]] const CacheLine* probe(LineAddr line) const noexcept;

  /// Reference the line. On a hit: updates replacement state, marks the line
  /// used (for demand kinds), sets dirty on writes, and returns true. On a
  /// miss: counts it and returns false (caller decides whether/when to fill).
  bool access(LineAddr line, AccessKind kind, Cycle now);

  /// Install `line`. If the set is full, evicts a victim and returns its
  /// metadata. Filling a line that is already present just refreshes its
  /// metadata (this happens when a prefetch completes after a demand fill
  /// already installed the line).
  std::optional<Eviction> fill(LineAddr line, FillOrigin origin, CoreId core,
                               Cycle now);

  /// Drop the line if present. Returns true if it was present.
  bool invalidate(LineAddr line);

  /// Set the dirty bit without touching replacement state (write-allocate
  /// installs). Returns false if the line is not present.
  bool mark_dirty(LineAddr line);

  /// Number of valid lines currently in `set`.
  [[nodiscard]] std::uint32_t set_occupancy(std::uint64_t set) const;

  /// Visit every valid line (diagnostics / inspectors).
  void for_each_line(const std::function<void(const CacheLine&)>& fn) const;

 private:
  struct WayRef {
    std::uint64_t set;
    std::uint32_t way;
  };

  [[nodiscard]] CacheLine* find(LineAddr line) noexcept;
  [[nodiscard]] const CacheLine* find(LineAddr line) const noexcept;

  CacheGeometry geometry_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<CacheLine> lines_;  // num_sets * ways, row-major by set
  CacheStats stats_;
};

}  // namespace spf
