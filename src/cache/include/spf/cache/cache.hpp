// Set-associative cache model with per-line provenance metadata.
//
// The cache is a *state* model, not a timing model: lookup/fill/evict are
// immediate. Timing (miss latency, MSHR occupancy, bandwidth) is layered on
// by spf_mshr/spf_memsys/spf_sim. Keeping state and timing separate lets the
// Set Affinity profiler reuse the state model stand-alone.
//
// Every line remembers who filled it (FillOrigin) and whether a demand access
// touched it since the fill — exactly the metadata the paper's three cache
// pollution cases are defined over.
//
// Hot-path layout: lookups scan a flat structure-of-arrays view — one packed
// tag array plus a per-set validity bitmask — so `find` touches only the
// bytes it compares, not whole 40-byte CacheLine records. The CacheLine
// array is kept alongside (same row-major (set, way) order, `valid` kept in
// sync with the bitmask) for metadata reads, `probe` pointer stability, and
// `for_each_line` iteration order.
//
// Tag match is vectorized where the ISA allows: the packed per-set tag row is
// compared 2 (SSE2) or 4 (AVX2) ways per instruction into a match bitmask,
// ANDed with the set's validity bitmask, and resolved with countr_zero — the
// same lowest-way-wins order as the scalar scan, so artifacts stay
// byte-identical. `SPF_NO_SIMD` disables the vector path at compile time;
// setting the `SPF_FORCE_SCALAR_TAGS` environment variable (any value)
// disables it at run time so CI can exercise the scalar fallback on SIMD
// hardware.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "spf/cache/replacement.hpp"
#include "spf/common/arena.hpp"
#include "spf/common/assert.hpp"
#include "spf/common/simd_match.hpp"
#include "spf/mem/geometry.hpp"
#include "spf/mem/types.hpp"

namespace spf {

namespace cache_detail {

constexpr std::uint32_t kNoWay = ~std::uint32_t{0};

/// Reference scan: walk the set's validity bits low-to-high and compare tags
/// one at a time. First (lowest-way) match wins.
inline std::uint32_t find_way_scalar(const LineAddr* tags,
                                     std::uint64_t valid_mask,
                                     LineAddr line) noexcept {
  std::uint64_t m = valid_mask;
  while (m != 0) {
    const auto w = static_cast<std::uint32_t>(std::countr_zero(m));
    if (tags[w] == line) return w;
    m &= m - 1;
  }
  return kNoWay;
}

}  // namespace cache_detail

/// Metadata carried by each valid cache line.
struct CacheLine {
  LineAddr line = 0;
  bool valid = false;
  bool dirty = false;
  /// Who caused this line's fill.
  FillOrigin origin = FillOrigin::kDemand;
  /// True once a demand (non-prefetch) access hits the line after its fill.
  bool used_since_fill = false;
  /// Core whose request filled the line.
  CoreId filler_core = 0;
  /// Simulated time of the fill.
  Cycle fill_time = 0;
};

/// A line pushed out by a fill, annotated with its end-of-life metadata.
struct Eviction {
  CacheLine victim;
  /// Line whose fill displaced the victim.
  LineAddr replaced_by = 0;
  FillOrigin replaced_by_origin = FillOrigin::kDemand;
  Cycle when = 0;
  /// Row-major (set * ways + way) slot the victim occupied — the same slot
  /// the displacing line installs into. Provenance resolves the victim's
  /// record and links the displacing fill through this index.
  std::uint32_t slot = 0;
};

/// Aggregate counters. Hit/miss here are *state* hits (line valid), i.e. the
/// paper's "totally" classification before MSHR effects are applied.
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  /// Evictions whose victim was an unused prefetch, split by the victim's
  /// origin (paper pollution cases 2 and 3 raw material).
  std::uint64_t evicted_unused_helper = 0;
  std::uint64_t evicted_unused_hw = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

class Cache {
 public:
  /// Sentinel for "no (set, way) slot" in the slot-reporting interfaces
  /// below. Slots index the row-major lines_ array: set * ways + way.
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// `arena`, when non-null, backs the line/tag/validity arrays; it must
  /// outlive the cache (and every cache moved from it). Null keeps the
  /// global heap.
  Cache(const CacheGeometry& geometry, ReplacementKind policy,
        std::uint64_t seed = 0x5eed, Arena* arena = nullptr);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;
  // All state is value-semantic (vectors + the replacement variant), so the
  // defaulted moves are sound: the moved-from cache is empty but destructible,
  // and can be reassigned a fresh Cache before reuse.
  Cache(Cache&&) = default;
  Cache& operator=(Cache&&) = default;

  /// Reinitialize in place to a cold cache of the given shape, as if freshly
  /// constructed — but reusing existing storage capacity where the new shape
  /// fits (same-geometry resets allocate nothing). This is the seam
  /// ExperimentContext uses to replay many configurations without per-run
  /// construction.
  void reset_to(const CacheGeometry& geometry, ReplacementKind policy,
                std::uint64_t seed = 0x5eed);

  [[nodiscard]] const CacheGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] ReplacementKind policy() const noexcept { return policy_.kind(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  /// Side-effect-free lookup: returns the line if present, without touching
  /// replacement state or counters.
  [[nodiscard]] const CacheLine* probe(LineAddr line) const noexcept {
    const std::uint64_t set = geometry_.set_of_line(line);
    const std::uint32_t way = find_way(set, line);
    return way == kNoWay ? nullptr : &lines_[set * geometry_.ways() + way];
  }

  /// Reference the line. On a hit: updates replacement state, marks the line
  /// used (for demand kinds), sets dirty on writes, and returns true. On a
  /// miss: counts it and returns false (caller decides whether/when to fill).
  SPF_ALWAYS_INLINE bool access(LineAddr line, AccessKind kind, Cycle now) {
    std::uint32_t unused;
    return access(line, kind, now, unused);
  }

  /// access() that additionally reports the line's slot when this reference
  /// was the *first demand use of a prefetch-origin line* (kNoSlot
  /// otherwise) — read from the line's metadata in the same tag scan, before
  /// the hit marks it used. The provenance hot path keys its slot-indexed
  /// records off this instead of a probe()+access() pair, which would scan
  /// the set's tags twice per demand lookup.
  SPF_ALWAYS_INLINE bool access(LineAddr line, AccessKind kind, Cycle /*now*/,
                                std::uint32_t& first_use_slot) {
    first_use_slot = kNoSlot;
    ++stats_.lookups;
    const std::uint64_t set = geometry_.set_of_line(line);
    const std::uint32_t way = find_way(set, line);
    if (way == kNoWay) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    policy_.on_hit(set, way);
    const std::size_t slot = set * geometry_.ways() + way;
    CacheLine& hit = lines_[slot];
    if (kind != AccessKind::kPrefetch) {
      if (!hit.used_since_fill && hit.origin != FillOrigin::kDemand) {
        first_use_slot = static_cast<std::uint32_t>(slot);
      }
      hit.used_since_fill = true;
    }
    if (kind == AccessKind::kWrite) hit.dirty = true;
    return true;
  }

  /// Install `line`. If the set is full, evicts a victim and returns its
  /// metadata. Filling a line that is already present just refreshes its
  /// metadata (this happens when a prefetch completes after a demand fill
  /// already installed the line). `slot_out`, when non-null, receives the
  /// slot the line occupies after the call (provenance keys its records by
  /// slot).
  std::optional<Eviction> fill(LineAddr line, FillOrigin origin, CoreId core,
                               Cycle now, std::uint32_t* slot_out = nullptr);

  /// fill() minus the already-present probe, for callers that have just
  /// observed the miss with no intervening fill (the simulator's private-L1
  /// refill). Precondition: `line` is not present. Inline: this is the
  /// simulator's per-L1-miss refill path.
  std::optional<Eviction> fill_absent(LineAddr line, FillOrigin origin,
                                      CoreId core, Cycle now,
                                      std::uint32_t* slot_out = nullptr) {
    const std::uint64_t set = geometry_.set_of_line(line);
    const std::size_t base = set * geometry_.ways();
    SPF_DEBUG_ASSERT(find_way(set, line) == kNoWay,
                     "fill_absent on a present line");

    ++stats_.fills;
    const std::uint64_t full_mask =
        geometry_.ways() == 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << geometry_.ways()) - 1;
    const std::uint64_t free_mask = ~valid_[set] & full_mask;
    std::uint32_t way = geometry_.ways();
    if (free_mask != 0) {
      // Lowest invalid way first, matching the old ascending scan.
      way = static_cast<std::uint32_t>(std::countr_zero(free_mask));
    }

    std::optional<Eviction> evicted;
    if (way == geometry_.ways()) {
      way = policy_.victim(set);
      SPF_DEBUG_ASSERT(way < geometry_.ways(), "policy returned bad way");
      CacheLine& victim = lines_[base + way];
      ++stats_.evictions;
      if (!victim.used_since_fill) {
        if (victim.origin == FillOrigin::kHelper) ++stats_.evicted_unused_helper;
        if (victim.origin == FillOrigin::kHardware) ++stats_.evicted_unused_hw;
      }
      evicted = Eviction{victim, line, origin, now,
                         static_cast<std::uint32_t>(base + way)};
    }

    if (slot_out != nullptr) *slot_out = static_cast<std::uint32_t>(base + way);
    lines_[base + way] = CacheLine{
        .line = line,
        .valid = true,
        .dirty = false,
        .origin = origin,
        .used_since_fill = origin == FillOrigin::kDemand,
        .filler_core = core,
        .fill_time = now,
    };
    tags_[base + way] = line;
    valid_[set] |= std::uint64_t{1} << way;
    policy_.on_fill(set, way);
    return evicted;
  }

  /// Drop the line if present. Returns true if it was present.
  bool invalidate(LineAddr line);

  /// Set the dirty bit without touching replacement state (write-allocate
  /// installs). Returns false if the line is not present.
  bool mark_dirty(LineAddr line);

  /// Number of valid lines currently in `set`.
  [[nodiscard]] std::uint32_t set_occupancy(std::uint64_t set) const;

  /// True when this cache resolves tag matches with the vector path (SIMD
  /// compiled in and not disabled via SPF_FORCE_SCALAR_TAGS).
  [[nodiscard]] static bool simd_tag_match() noexcept {
#ifdef SPF_SIMD_MATCH
    return !simd::force_scalar;
#else
    return false;
#endif
  }

  /// Visit every valid line (diagnostics / inspectors), in row-major
  /// (set, way) order. Templated so visitors inline — no std::function
  /// type erasure on snapshot paths.
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (const CacheLine& l : lines_) {
      if (l.valid) fn(l);
    }
  }

 private:
  static constexpr std::uint32_t kNoWay = cache_detail::kNoWay;

  template <typename T>
  using ArenaVec = std::vector<T, ArenaAllocator<T>>;

  /// Way holding `line` in `set`, or kNoWay. Vector compare over the packed
  /// tag row when available; the validity AND + countr_zero keeps the scalar
  /// scan's lowest-way-wins order exactly.
  [[nodiscard]] std::uint32_t find_way(std::uint64_t set,
                                       LineAddr line) const noexcept {
    const LineAddr* tags = &tags_[set * geometry_.ways()];
#ifdef SPF_SIMD_MATCH
    if (!simd::force_scalar) {
      const std::uint64_t m =
          simd::match_mask_u64(tags, geometry_.ways(), line) & valid_[set];
      return m != 0 ? static_cast<std::uint32_t>(std::countr_zero(m)) : kNoWay;
    }
#endif
    return cache_detail::find_way_scalar(tags, valid_[set], line);
  }

  CacheGeometry geometry_;
  ReplacementState policy_;
  ArenaVec<CacheLine> lines_;   // num_sets * ways, row-major by set
  ArenaVec<LineAddr> tags_;     // mirror of lines_[i].line, packed
  ArenaVec<std::uint64_t> valid_;  // per-set validity bitmask (ways <= 64)
  CacheStats stats_;
};

}  // namespace spf
