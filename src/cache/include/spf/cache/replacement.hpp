// Replacement policies for the set-associative cache model.
//
// The paper's testbed L2 is (pseudo-)LRU; the ablation bench
// `ablate_replacement` checks that the Set-Affinity-derived distance bound is
// robust across policies, so we provide LRU, tree-PLRU, FIFO, Random and
// SRRIP.
//
// Dispatch is *devirtualized*: each policy is a value-semantic struct with
// contiguous per-set state, and `ReplacementState` holds them in a
// `std::variant` dispatched with `std::visit`. The cache's hot path
// (on_hit/on_fill/victim on every access) pays one switch on the variant
// index instead of a vtable load through a heap pointer, the state lives
// inline in the Cache object, and Cache gains honest value move semantics
// for free. The algorithms themselves are unchanged — each policy must
// produce the same victim sequence as the previous virtual implementation.
//
// A policy sees way-level events for one cache (all sets) and answers victim
// queries. State is owned by the policy, indexed by (set, way).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "spf/common/assert.hpp"
#include "spf/common/rng.hpp"
#include "spf/mem/types.hpp"

namespace spf {

enum class ReplacementKind : std::uint8_t {
  kLru,
  kTreePlru,
  kFifo,
  kRandom,
  kSrrip,
};

[[nodiscard]] const char* to_string(ReplacementKind k) noexcept;
/// Parses "lru" / "plru" / "fifo" / "random" / "srrip" (case-sensitive).
[[nodiscard]] ReplacementKind replacement_from_string(const std::string& s);

/// True LRU via per-line monotonic reference stamps; victim is the minimum
/// stamp. Linear scan over <= 16 ways is cheaper than maintaining a list.
class LruState {
 public:
  LruState(std::uint64_t num_sets, std::uint32_t ways)
      : ways_(ways), stamps_(num_sets * ways, 0) {}

  /// As-if-freshly-constructed, reusing stamp storage capacity.
  void reset(std::uint64_t num_sets, std::uint32_t ways) {
    ways_ = ways;
    clock_ = 0;
    stamps_.assign(num_sets * ways, 0);
  }

  void on_hit(std::uint64_t set, std::uint32_t way) {
    stamps_[set * ways_ + way] = ++clock_;
  }
  void on_fill(std::uint64_t set, std::uint32_t way) {
    stamps_[set * ways_ + way] = ++clock_;
  }
  [[nodiscard]] std::uint32_t victim(std::uint64_t set) {
    std::uint32_t best = 0;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const std::uint64_t s = stamps_[set * ways_ + w];
      if (s < best_stamp) {
        best_stamp = s;
        best = w;
      }
    }
    return best;
  }
  [[nodiscard]] ReplacementKind kind() const noexcept {
    return ReplacementKind::kLru;
  }

 private:
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamps_;
};

/// Tree pseudo-LRU: one bit per internal node of a binary tree over the ways.
/// This is what real L2s (including Core 2's) approximate LRU with.
class TreePlruState {
 public:
  TreePlruState(std::uint64_t num_sets, std::uint32_t ways)
      : ways_(ways), bits_(num_sets * (ways > 1 ? ways - 1 : 1), 0) {
    SPF_ASSERT((ways & (ways - 1)) == 0, "tree-PLRU needs power-of-two ways");
  }

  void reset(std::uint64_t num_sets, std::uint32_t ways) {
    SPF_ASSERT((ways & (ways - 1)) == 0, "tree-PLRU needs power-of-two ways");
    ways_ = ways;
    bits_.assign(num_sets * (ways > 1 ? ways - 1 : 1), 0);
  }

  void on_hit(std::uint64_t set, std::uint32_t way) { touch(set, way); }
  void on_fill(std::uint64_t set, std::uint32_t way) { touch(set, way); }

  [[nodiscard]] std::uint32_t victim(std::uint64_t set) {
    if (ways_ == 1) return 0;
    std::uint8_t* tree = &bits_[set * (ways_ - 1)];
    std::uint32_t node = 0;
    // Follow the bits toward the pseudo-least-recently-used leaf: bit==0
    // means "left subtree is older".
    std::uint32_t leaf_base = 0;
    std::uint32_t span = ways_;
    while (span > 1) {
      const bool go_right = tree[node] != 0;
      span /= 2;
      if (go_right) leaf_base += span;
      node = 2 * node + (go_right ? 2 : 1);
    }
    return leaf_base;
  }
  [[nodiscard]] ReplacementKind kind() const noexcept {
    return ReplacementKind::kTreePlru;
  }

 private:
  void touch(std::uint64_t set, std::uint32_t way) {
    if (ways_ == 1) return;
    std::uint8_t* tree = &bits_[set * (ways_ - 1)];
    std::uint32_t node = 0;
    std::uint32_t leaf_base = 0;
    std::uint32_t span = ways_;
    while (span > 1) {
      span /= 2;
      const bool in_right = way >= leaf_base + span;
      // Point the bit away from the touched way.
      tree[node] = in_right ? 0 : 1;
      if (in_right) leaf_base += span;
      node = 2 * node + (in_right ? 2 : 1);
    }
  }

  std::uint32_t ways_;
  std::vector<std::uint8_t> bits_;
};

/// FIFO: victim is the oldest *fill*; hits do not refresh.
class FifoState {
 public:
  FifoState(std::uint64_t num_sets, std::uint32_t ways)
      : ways_(ways), stamps_(num_sets * ways, 0) {}

  void reset(std::uint64_t num_sets, std::uint32_t ways) {
    ways_ = ways;
    clock_ = 0;
    stamps_.assign(num_sets * ways, 0);
  }

  void on_hit(std::uint64_t, std::uint32_t) {}
  void on_fill(std::uint64_t set, std::uint32_t way) {
    stamps_[set * ways_ + way] = ++clock_;
  }
  [[nodiscard]] std::uint32_t victim(std::uint64_t set) {
    std::uint32_t best = 0;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const std::uint64_t s = stamps_[set * ways_ + w];
      if (s < best_stamp) {
        best_stamp = s;
        best = w;
      }
    }
    return best;
  }
  [[nodiscard]] ReplacementKind kind() const noexcept {
    return ReplacementKind::kFifo;
  }

 private:
  std::uint32_t ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamps_;
};

class RandomState {
 public:
  RandomState(std::uint32_t ways, std::uint64_t seed)
      : ways_(ways), rng_(seed) {}

  void reset(std::uint32_t ways, std::uint64_t seed) {
    ways_ = ways;
    rng_ = Xoshiro256(seed);
  }

  void on_hit(std::uint64_t, std::uint32_t) {}
  void on_fill(std::uint64_t, std::uint32_t) {}
  [[nodiscard]] std::uint32_t victim(std::uint64_t) {
    return static_cast<std::uint32_t>(rng_.below(ways_));
  }
  [[nodiscard]] ReplacementKind kind() const noexcept {
    return ReplacementKind::kRandom;
  }

 private:
  std::uint32_t ways_;
  Xoshiro256 rng_;
};

/// SRRIP (Jaleel et al., ISCA'10) with 2-bit re-reference prediction values.
/// Fills insert at RRPV=2 (long re-reference), hits promote to 0, victims are
/// lines at RRPV=3 (aging the whole set until one exists).
class SrripState {
 public:
  SrripState(std::uint64_t num_sets, std::uint32_t ways)
      : ways_(ways), rrpv_(num_sets * ways, kMax) {}

  void reset(std::uint64_t num_sets, std::uint32_t ways) {
    ways_ = ways;
    rrpv_.assign(num_sets * ways, kMax);
  }

  void on_hit(std::uint64_t set, std::uint32_t way) {
    rrpv_[set * ways_ + way] = 0;
  }
  void on_fill(std::uint64_t set, std::uint32_t way) {
    rrpv_[set * ways_ + way] = kLong;
  }
  [[nodiscard]] std::uint32_t victim(std::uint64_t set) {
    std::uint8_t* row = &rrpv_[set * ways_];
    for (;;) {
      for (std::uint32_t w = 0; w < ways_; ++w) {
        if (row[w] == kMax) return w;
      }
      for (std::uint32_t w = 0; w < ways_; ++w) ++row[w];
    }
  }
  [[nodiscard]] ReplacementKind kind() const noexcept {
    return ReplacementKind::kSrrip;
  }

 private:
  static constexpr std::uint8_t kMax = 3;
  static constexpr std::uint8_t kLong = 2;

  std::uint32_t ways_;
  std::vector<std::uint8_t> rrpv_;
};

/// Tagged-union dispatcher over the concrete policies. Copyable and movable;
/// `seed` feeds the Random policy's generator (ignored by others), matching
/// the old `make_replacement` factory.
///
/// Dispatch is a hand-rolled switch on the variant index rather than
/// std::visit: libstdc++'s visit goes through a function-pointer table, which
/// blocks inlining of the tiny policy bodies on the per-access hot path. The
/// get_if deref is safe because each case is only reached for its own index.
/// The variant alternative order matches the ReplacementKind enumerator
/// order (kind() relies on it).
class ReplacementState {
 public:
  ReplacementState(ReplacementKind kind, std::uint64_t num_sets,
                   std::uint32_t ways, std::uint64_t seed = 0x5eed);

  /// As-if-freshly-constructed for the given shape. When `kind` matches the
  /// current alternative the per-policy reset reuses its state vector's
  /// capacity; a kind change re-emplaces the variant (allocates).
  void reset_to(ReplacementKind kind, std::uint64_t num_sets,
                std::uint32_t ways, std::uint64_t seed = 0x5eed) {
    if (kind != this->kind()) {
      state_ = make(kind, num_sets, ways, seed);
      return;
    }
    switch (state_.index()) {
      case 0: std::get_if<0>(&state_)->reset(num_sets, ways); return;
      case 1: std::get_if<1>(&state_)->reset(num_sets, ways); return;
      case 2: std::get_if<2>(&state_)->reset(num_sets, ways); return;
      case 3: std::get_if<3>(&state_)->reset(ways, seed); return;
      case 4: std::get_if<4>(&state_)->reset(num_sets, ways); return;
    }
  }

  void on_hit(std::uint64_t set, std::uint32_t way) {
    switch (state_.index()) {
      case 0: std::get_if<0>(&state_)->on_hit(set, way); return;
      case 1: std::get_if<1>(&state_)->on_hit(set, way); return;
      case 2: std::get_if<2>(&state_)->on_hit(set, way); return;
      case 3: std::get_if<3>(&state_)->on_hit(set, way); return;
      case 4: std::get_if<4>(&state_)->on_hit(set, way); return;
    }
  }
  void on_fill(std::uint64_t set, std::uint32_t way) {
    switch (state_.index()) {
      case 0: std::get_if<0>(&state_)->on_fill(set, way); return;
      case 1: std::get_if<1>(&state_)->on_fill(set, way); return;
      case 2: std::get_if<2>(&state_)->on_fill(set, way); return;
      case 3: std::get_if<3>(&state_)->on_fill(set, way); return;
      case 4: std::get_if<4>(&state_)->on_fill(set, way); return;
    }
  }
  [[nodiscard]] std::uint32_t victim(std::uint64_t set) {
    switch (state_.index()) {
      case 0: return std::get_if<0>(&state_)->victim(set);
      case 1: return std::get_if<1>(&state_)->victim(set);
      case 2: return std::get_if<2>(&state_)->victim(set);
      case 3: return std::get_if<3>(&state_)->victim(set);
      default: return std::get_if<4>(&state_)->victim(set);
    }
  }
  [[nodiscard]] ReplacementKind kind() const noexcept {
    return static_cast<ReplacementKind>(state_.index());
  }

 private:
  static std::variant<LruState, TreePlruState, FifoState, RandomState,
                      SrripState>
  make(ReplacementKind kind, std::uint64_t num_sets, std::uint32_t ways,
       std::uint64_t seed);

  std::variant<LruState, TreePlruState, FifoState, RandomState, SrripState>
      state_;
};

static_assert(static_cast<std::size_t>(ReplacementKind::kLru) == 0 &&
                  static_cast<std::size_t>(ReplacementKind::kTreePlru) == 1 &&
                  static_cast<std::size_t>(ReplacementKind::kFifo) == 2 &&
                  static_cast<std::size_t>(ReplacementKind::kRandom) == 3 &&
                  static_cast<std::size_t>(ReplacementKind::kSrrip) == 4,
              "variant alternative order must match ReplacementKind");

}  // namespace spf
