// Replacement policies for the set-associative cache model.
//
// The paper's testbed L2 is (pseudo-)LRU; the ablation bench
// `ablate_replacement` checks that the Set-Affinity-derived distance bound is
// robust across policies, so we provide LRU, tree-PLRU, FIFO, Random and
// SRRIP behind one interface.
//
// A policy sees way-level events for one cache (all sets) and answers victim
// queries. State is owned by the policy, indexed by (set, way).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "spf/common/rng.hpp"
#include "spf/mem/types.hpp"

namespace spf {

enum class ReplacementKind : std::uint8_t {
  kLru,
  kTreePlru,
  kFifo,
  kRandom,
  kSrrip,
};

[[nodiscard]] const char* to_string(ReplacementKind k) noexcept;
/// Parses "lru" / "plru" / "fifo" / "random" / "srrip" (case-sensitive).
[[nodiscard]] ReplacementKind replacement_from_string(const std::string& s);

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A line in (set, way) was referenced by a hit.
  virtual void on_hit(std::uint64_t set, std::uint32_t way) = 0;
  /// A new line was installed into (set, way).
  virtual void on_fill(std::uint64_t set, std::uint32_t way) = 0;
  /// Which way of `set` should be evicted next. Invalid ways are chosen by
  /// the cache itself before the policy is consulted, so victim() may assume
  /// the set is full.
  [[nodiscard]] virtual std::uint32_t victim(std::uint64_t set) = 0;

  [[nodiscard]] virtual ReplacementKind kind() const noexcept = 0;
};

/// Factory. `seed` feeds the Random policy's generator (ignored by others).
std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind,
                                                    std::uint64_t num_sets,
                                                    std::uint32_t ways,
                                                    std::uint64_t seed = 0x5eed);

}  // namespace spf
